"""Data-parallel task adapters and spawn-safe builders.

A *data-parallel task* is what :class:`repro.dist.DistributedTrainer`
drives on each rank: it owns the model/optimiser replica and knows how
to compute one micro-batch slot's gradients and how to apply a reduced
step.  The protocol (duck-typed, like ``SupervisedTask``):

* ``sampler`` — a :class:`~repro.dist.ShardedSampler`;
* ``iteration`` / ``total_iterations`` / ``eval_every`` attributes;
* ``parameters()``, ``slot_forward_backward(iteration, slot, indices)``
  (returns ``(loss, components)`` with gradients left on the
  parameters), ``install_reduced(flat, manifest, loss, components)``
  (alias the reduced bucket into ``param.grad`` views),
  ``apply_step(loss)`` / ``skip_step()``;
* the usual state surface: ``state_dict`` / ``load_state_dict`` /
  ``fingerprint_data`` / ``periodic_eval`` / ``finalize`` / ``result``.

Per-slot randomness is drawn from ``spawn_rng`` streams keyed by
``(iteration, slot)`` — never by rank — so a slot's loss and gradients
are identical no matter which worker computes it.  That is the property
the bit-exactness invariant rests on.

The module-level ``build_*`` functions are the worker entry builders:
they take only picklable primitives (a requirement of the ``spawn``
start method) and reconstruct dataset, model, and task inside the
worker process.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.dist.flatten import TensorManifest, unflatten_tensors
from repro.dist.sampler import ShardedSampler
from repro.utils.seeding import spawn_rng


def _install_grad_views(parameters: List, flat: np.ndarray,
                        manifest: TensorManifest) -> None:
    """Point every ``param.grad`` at its slice of the reduced bucket."""
    views = unflatten_tensors(flat, manifest)
    for param, view in zip(parameters, views):
        param.grad = view


class YolloDistTask:
    """Adapt a :class:`repro.core.YolloTrainer` replica to the protocol.

    The wrapped trainer keeps doing what it does best (forward/backward,
    optimiser step, history and metrics bookkeeping); this adapter only
    redirects batch selection to the sharded sampler and swaps the
    trainer's RNG for the slot's stream while a slot is being computed.
    The trainer's own ``_rng`` is never consumed, so its state stays
    identical across ranks and checkpoints cleanly.
    """

    def __init__(self, trainer, grad_shards: int):
        from repro.core.losses import LossBreakdown

        self._LossBreakdown = LossBreakdown
        self.trainer = trainer
        self.sampler = ShardedSampler(
            num_samples=len(trainer._train_samples),
            batch_size=trainer.config.batch_size,
            grad_shards=grad_shards,
        )

    # -- iteration state delegates to the trainer ----------------------
    @property
    def iteration(self) -> int:
        return self.trainer.iteration

    @property
    def total_iterations(self) -> int:
        return self.trainer.total_iterations

    @property
    def eval_every(self) -> int:
        return self.trainer.eval_every

    def parameters(self) -> List:
        return self.trainer.optimizer.parameters

    # -- slot compute --------------------------------------------------
    def slot_forward_backward(
        self, iteration: int, slot_id: int, indices: np.ndarray
    ) -> Tuple[float, Dict[str, float]]:
        from repro.data.loader import encode_batch

        samples = [self.trainer._train_samples[i] for i in indices]
        batch = encode_batch(
            samples, self.trainer.dataset.vocab,
            self.trainer.config.max_query_length,
        )
        # The anchor sampler draws per sample from the trainer RNG; give
        # it the slot's own stream so the result is rank-independent.
        saved_rng = self.trainer._rng
        self.trainer._rng = spawn_rng(f"dist-loss-i{iteration}-s{slot_id}")
        try:
            loss = self.trainer._forward_backward_batch(batch)
        finally:
            self.trainer._rng = saved_rng
        breakdown = self.trainer._pending
        self.trainer._pending = None
        return loss, {
            "att": breakdown.att, "cls": breakdown.cls, "reg": breakdown.reg,
        }

    def install_reduced(self, flat: np.ndarray, manifest: TensorManifest,
                        loss: float, components: Dict[str, float]) -> None:
        _install_grad_views(self.parameters(), flat, manifest)
        self.trainer._flat_grads = flat
        # apply_step only reads the detached component values from the
        # pending breakdown; the loss tensor itself is not needed.
        self.trainer._pending = self._LossBreakdown(
            total=Tensor(np.asarray(loss)),
            att=components.get("att", 0.0),
            cls=components.get("cls", 0.0),
            reg=components.get("reg", 0.0),
        )

    # -- lifecycle delegates -------------------------------------------
    def apply_step(self, loss: float) -> None:
        self.trainer.apply_step(loss)

    def skip_step(self) -> None:
        self.trainer.skip_step()

    def periodic_eval(self) -> None:
        self.trainer.periodic_eval()

    def finalize(self) -> None:
        self.trainer.finalize()

    def state_dict(self) -> Dict[str, Any]:
        return self.trainer.state_dict()

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.trainer.load_state_dict(state)

    def fingerprint_data(self) -> Dict[str, Any]:
        return self.trainer.fingerprint_data()

    def result(self) -> Any:
        return self.trainer.result()


class PretrainDistTask:
    """Data-parallel backbone pretraining (synthetic-ImageNet stand-in).

    The task is generative — there is no finite dataset to shard — so
    the sampler only decides slot *sizes*: each slot renders its share
    of the global batch from the slot's own RNG stream.
    """

    def __init__(self, backbone, steps: int, grad_shards: int,
                 batch_size: int = 16, lr: float = 1e-3,
                 image_height: int = 48, image_width: int = 72):
        from repro.backbone.pretrain import ClassificationHead
        from repro.data.scenes import SceneGenerator
        from repro.optim import Adam

        self.backbone = backbone
        self.head = ClassificationHead(
            backbone.out_channels, rng=spawn_rng("dist-pretrain-head")
        )
        self.optimizer = Adam(
            backbone.parameters() + self.head.parameters(), lr=lr
        )
        self.generator = SceneGenerator(
            height=image_height, width=image_width,
            rng=spawn_rng("dist-pretrain-generator"),
        )
        self.batch_size = batch_size
        self.image_size = (image_height, image_width)
        self.sampler = ShardedSampler(
            num_samples=batch_size, batch_size=batch_size,
            grad_shards=grad_shards, seed_tag="dist-pretrain-sampler",
        )
        self.iteration = 0
        self.total_iterations = steps
        self.eval_every = 0
        self.history: Dict[str, List[float]] = {
            "loss": [], "category_acc": [], "color_acc": [],
        }
        self._flat: Optional[np.ndarray] = None
        self._pending: Dict[str, float] = {}

    def parameters(self) -> List:
        return self.optimizer.parameters

    def slot_forward_backward(
        self, iteration: int, slot_id: int, indices: np.ndarray
    ) -> Tuple[float, Dict[str, float]]:
        from repro.backbone.pretrain import _sample_classification_batch
        from repro.nn import softmax_cross_entropy

        rng = spawn_rng(f"dist-pretrain-i{iteration}-s{slot_id}")
        images, categories, colors = _sample_classification_batch(
            self.generator, len(indices), rng
        )
        features = self.backbone(Tensor(images))
        cat_logits, color_logits = self.head(features)
        loss = (softmax_cross_entropy(cat_logits, categories)
                + softmax_cross_entropy(color_logits, colors))
        self.optimizer.zero_grad()
        loss.backward()
        components = {
            "category_acc": float(
                (cat_logits.data.argmax(axis=1) == categories).mean()
            ),
            "color_acc": float(
                (color_logits.data.argmax(axis=1) == colors).mean()
            ),
        }
        return float(loss.data), components

    def install_reduced(self, flat: np.ndarray, manifest: TensorManifest,
                        loss: float, components: Dict[str, float]) -> None:
        _install_grad_views(self.parameters(), flat, manifest)
        self._flat = flat
        self._pending = dict(components)

    def apply_step(self, loss: float) -> None:
        self.optimizer.step()
        self._flat = None
        self.iteration += 1
        self.history["loss"].append(float(loss))
        self.history["category_acc"].append(
            self._pending.get("category_acc", 0.0)
        )
        self.history["color_acc"].append(self._pending.get("color_acc", 0.0))

    def skip_step(self) -> None:
        self.optimizer.zero_grad()
        self._flat = None
        self.iteration += 1

    def periodic_eval(self) -> None:
        pass

    def finalize(self) -> None:
        pass

    def state_dict(self) -> Dict[str, Any]:
        return {
            "iteration": self.iteration,
            "optimizer": self.optimizer.state_dict(),
            "backbone": self.backbone.state_dict(),
            "head": self.head.state_dict(),
            "history": {k: list(v) for k, v in self.history.items()},
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.iteration = int(state["iteration"])
        self.optimizer.load_state_dict(state["optimizer"])
        self.backbone.load_state_dict(state["backbone"])
        self.head.load_state_dict(state["head"])
        self.history = {k: list(v) for k, v in state["history"].items()}

    def fingerprint_data(self) -> Dict[str, Any]:
        return {
            "task": "dist-backbone-pretrain",
            "steps": self.total_iterations,
            "batch_size": self.batch_size,
            "lr": self.optimizer.lr,
            "image": list(self.image_size),
        }

    def result(self) -> Dict[str, List[float]]:
        return self.history


# ----------------------------------------------------------------------
# Spawn-safe builders (module-level; only picklable kwargs)
# ----------------------------------------------------------------------

_DATASET_SPECS = None


def _dataset_spec(name: str):
    global _DATASET_SPECS
    if _DATASET_SPECS is None:
        from repro.data import REFCOCO, REFCOCO_PLUS, REFCOCOG

        _DATASET_SPECS = {
            "RefCOCO": REFCOCO, "RefCOCO+": REFCOCO_PLUS, "RefCOCOg": REFCOCOG,
        }
    return _DATASET_SPECS[name]


def warm_backbone(name: str = "tiny", pretrain_steps: int = 1,
                  image_height: int = 48, image_width: int = 72) -> None:
    """Populate the on-disk backbone cache before workers race for it.

    Run once in the launcher process; workers then hit the cache file
    instead of N of them pretraining (and writing) the same weights.
    """
    from repro.backbone import load_pretrained_backbone

    load_pretrained_backbone(name, steps=pretrain_steps,
                             image_height=image_height,
                             image_width=image_width)


def build_yollo_task(
    dataset_name: str = "RefCOCO",
    scale: float = 0.25,
    grad_shards: int = 4,
    epochs: Optional[int] = None,
    iterations: Optional[int] = None,
    eval_every: int = 0,
    backbone: str = "tiny",
    pretrain_steps: int = 1,
    config_overrides: Optional[Dict[str, Any]] = None,
) -> YolloDistTask:
    """Build a YOLLO training replica inside a worker process."""
    from repro.backbone import load_pretrained_backbone
    from repro.core import YolloConfig, YolloModel, YolloTrainer
    from repro.data import build_dataset

    dataset = build_dataset(_dataset_spec(dataset_name).scaled(scale))
    config = YolloConfig(
        backbone=backbone,
        max_query_length=max(8, dataset.max_query_length),
    )
    if config_overrides:
        config = config.with_overrides(**config_overrides)
    pretrained = load_pretrained_backbone(
        config.backbone, steps=pretrain_steps,
        image_height=config.image_height, image_width=config.image_width,
    )
    model = YolloModel(config, vocab_size=len(dataset.vocab),
                       backbone=pretrained)
    trainer = YolloTrainer(model, dataset, config)
    trainer.begin_run(epochs=epochs, iterations=iterations,
                      eval_every=eval_every)
    return YolloDistTask(trainer, grad_shards=grad_shards)


def build_pretrain_task(
    backbone: str = "tiny",
    steps: int = 4,
    grad_shards: int = 4,
    batch_size: int = 16,
    lr: float = 1e-3,
    image_height: int = 48,
    image_width: int = 72,
) -> PretrainDistTask:
    """Build a backbone-pretraining replica inside a worker process."""
    from repro.backbone.factory import build_backbone

    return PretrainDistTask(
        build_backbone(backbone), steps=steps, grad_shards=grad_shards,
        batch_size=batch_size, lr=lr,
        image_height=image_height, image_width=image_width,
    )
