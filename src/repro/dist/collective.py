"""Socket/pipe-based collective communication between worker ranks.

Each rank holds one duplex :class:`multiprocessing.connection.Connection`
per peer (a full mesh — world sizes here are single-digit).  On top of
that, :class:`Collective` implements the small set of collectives the
data-parallel runtime needs:

* ``broadcast`` — root fans an arbitrary picklable object out to every
  rank (initial weights, resume payloads);
* ``all_reduce`` — deterministic *ring* all-reduce over a flat float
  buffer: reduce-scatter then all-gather, fixed chunk boundaries and a
  fixed accumulation order, so two runs at the same world size produce
  bit-identical sums;
* ``all_gather`` / ``gather`` / ``barrier`` — built from the same
  ordered primitives.

Every receive is bounded by a timeout (straggler detection) and every
message carries an (op, sequence) header so a desynchronised group
fails loudly (:class:`ProtocolError`) instead of silently reducing the
wrong step's gradients.  A dead peer surfaces as :class:`PeerLostError`
(EOF on its pipe) or :class:`CollectiveTimeout`; the worker runtime
turns either into a group-rebuild request.

The ring steps are deliberately *rank-serialised* (rank 0 sends first,
every other rank receives before sending).  Fully concurrent sends can
deadlock on OS pipe buffers once payloads outgrow them; serialising
costs one pipe latency per hop, which is noise at the scales this
runtime targets, and keeps the protocol trivially deadlock-free.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs import MetricsRegistry, get_registry, trace_span


class CollectiveError(RuntimeError):
    """Base class for collective-layer failures."""


class CollectiveTimeout(CollectiveError):
    """A peer did not answer within the timeout (straggler or hang)."""

    def __init__(self, rank: int, peer: int, op: str, timeout: float):
        super().__init__(
            f"rank {rank}: peer {peer} silent for {timeout:.1f}s during {op}"
        )
        self.peer = peer


class PeerLostError(CollectiveError):
    """A peer's pipe reached EOF — its process died mid-run."""

    def __init__(self, rank: int, peer: int, op: str):
        super().__init__(f"rank {rank}: lost peer {peer} during {op}")
        self.peer = peer


class ProtocolError(CollectiveError):
    """Ranks disagree about which collective op is in flight."""


def _payload_nbytes(payload: Any) -> int:
    """Approximate wire size of a payload for the comm-bytes counters."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple)):
        return sum(_payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(_payload_nbytes(v) for v in payload.values())
    return 64  # headers, scalars, small objects


class Collective:
    """Collective operations for one rank over a pipe mesh."""

    def __init__(
        self,
        rank: int,
        world_size: int,
        connections: Optional[Dict[int, Any]] = None,
        timeout: float = 60.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} outside world of {world_size}")
        connections = connections or {}
        expected = {r for r in range(world_size) if r != rank}
        if set(connections) != expected:
            raise ValueError(
                f"rank {rank} needs connections to {sorted(expected)}, "
                f"got {sorted(connections)}"
            )
        self.rank = rank
        self.world_size = world_size
        self.timeout = timeout
        self.metrics = metrics if metrics is not None else get_registry()
        self._conns = dict(connections)
        self._seq = 0

    # ------------------------------------------------------------------
    # Point-to-point with headers, timeouts, and byte accounting
    # ------------------------------------------------------------------
    def _send(self, peer: int, op: str, seq: int, payload: Any) -> None:
        try:
            self._conns[peer].send((op, seq, payload))
        except (BrokenPipeError, OSError):
            raise PeerLostError(self.rank, peer, op)
        self.metrics.counter("dist.bytes_sent").inc(_payload_nbytes(payload))
        self.metrics.counter("dist.messages_sent").inc()

    def _recv(self, peer: int, op: str, seq: int) -> Any:
        conn = self._conns[peer]
        try:
            if not conn.poll(self.timeout):
                raise CollectiveTimeout(self.rank, peer, op, self.timeout)
            got_op, got_seq, payload = conn.recv()
        except EOFError:
            raise PeerLostError(self.rank, peer, op)
        except (BrokenPipeError, ConnectionResetError):
            raise PeerLostError(self.rank, peer, op)
        if (got_op, got_seq) != (op, seq):
            raise ProtocolError(
                f"rank {self.rank}: expected {op}#{seq} from peer {peer}, "
                f"got {got_op}#{got_seq}"
            )
        self.metrics.counter("dist.bytes_received").inc(_payload_nbytes(payload))
        return payload

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def broadcast(self, obj: Any = None, root: int = 0) -> Any:
        """Fan ``obj`` from ``root`` out to every rank; returns it everywhere."""
        if self.world_size == 1:
            return obj
        seq = self._next_seq()
        with self.metrics.timer("dist.broadcast_seconds"), \
                trace_span("dist.broadcast"):
            if self.rank == root:
                for peer in range(self.world_size):
                    if peer != root:
                        self._send(peer, "bcast", seq, obj)
                return obj
            return self._recv(root, "bcast", seq)

    def barrier(self) -> None:
        """Block until every rank has arrived (star in, star out)."""
        if self.world_size == 1:
            return
        seq = self._next_seq()
        with trace_span("dist.barrier"):
            if self.rank == 0:
                for peer in range(1, self.world_size):
                    self._recv(peer, "bar-in", seq)
                for peer in range(1, self.world_size):
                    self._send(peer, "bar-out", seq, None)
            else:
                self._send(0, "bar-in", seq, None)
                self._recv(0, "bar-out", seq)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Collect one object per rank at ``root`` (rank order); None elsewhere."""
        if self.world_size == 1:
            return [obj]
        seq = self._next_seq()
        with trace_span("dist.gather"):
            if self.rank == root:
                out: List[Any] = []
                for peer in range(self.world_size):
                    if peer == root:
                        out.append(obj)
                    else:
                        out.append(self._recv(peer, "gather", seq))
                return out
            self._send(root, "gather", seq, obj)
            return None

    def all_gather(self, obj: Any) -> List[Any]:
        """Every rank receives the rank-ordered list of every rank's object."""
        if self.world_size == 1:
            return [obj]
        seq = self._next_seq()
        with self.metrics.timer("dist.allgather_seconds"), \
                trace_span("dist.allgather"):
            if self.rank == 0:
                gathered = [obj]
                for peer in range(1, self.world_size):
                    gathered.append(self._recv(peer, "ag-in", seq))
                for peer in range(1, self.world_size):
                    self._send(peer, "ag-out", seq, gathered)
                return gathered
            self._send(0, "ag-in", seq, obj)
            return self._recv(0, "ag-out", seq)

    def all_reduce(self, flat: np.ndarray) -> np.ndarray:
        """Deterministic ring all-reduce (sum) over a flat 1-D buffer.

        Reduce-scatter then all-gather over ``world_size`` fixed chunks.
        Within a chunk the accumulation order is the ring order starting
        from the chunk's owner, so the floating-point result is a pure
        function of (values, world size) — bit-identical run to run.
        """
        flat = np.asarray(flat)
        if flat.ndim != 1:
            raise ValueError("all_reduce expects a flat 1-D buffer")
        if self.world_size == 1:
            return flat.copy()

        world = self.world_size
        sizes = self.all_gather(int(flat.size))
        if len(set(sizes)) != 1:
            raise ProtocolError(
                f"rank {self.rank}: all_reduce buffer sizes differ: {sizes}"
            )

        result = flat.copy()
        bounds = [(i * flat.size) // world for i in range(world + 1)]
        chunk = lambda i: result[bounds[i % world]:bounds[i % world + 1]]  # noqa: E731
        right = (self.rank + 1) % world
        left = (self.rank - 1) % world

        started = time.perf_counter()
        with trace_span("dist.allreduce"):
            # Reduce-scatter: after W-1 steps rank r owns the full sum of
            # chunk (r+1) mod W.
            for step in range(world - 1):
                seq = self._next_seq()
                send_idx = (self.rank - step) % world
                recv_idx = (self.rank - step - 1) % world
                if self.rank == 0:
                    self._send(right, "rs", seq, chunk(send_idx).copy())
                    incoming = self._recv(left, "rs", seq)
                else:
                    incoming = self._recv(left, "rs", seq)
                    self._send(right, "rs", seq, chunk(send_idx).copy())
                chunk(recv_idx)[...] += incoming
            # All-gather: circulate the reduced chunks.
            for step in range(world - 1):
                seq = self._next_seq()
                send_idx = (self.rank - step + 1) % world
                recv_idx = (self.rank - step) % world
                if self.rank == 0:
                    self._send(right, "ag", seq, chunk(send_idx).copy())
                    incoming = self._recv(left, "ag", seq)
                else:
                    incoming = self._recv(left, "ag", seq)
                    self._send(right, "ag", seq, chunk(send_idx).copy())
                chunk(recv_idx)[...] = incoming
        self.metrics.histogram("dist.allreduce_seconds").observe(
            time.perf_counter() - started
        )
        return result
