"""Process-based worker group: launch, monitor, rebuild.

:class:`WorkerGroup` turns a :class:`WorkerSpec` into ``world_size``
OS processes (``spawn`` start method — everything crossing the process
boundary must be picklable, which is why task builders are module-level
functions taking primitive kwargs).  The launcher wires a full pipe
mesh between workers for the collective layer plus one report pipe per
worker back to the controller, then watches for completion.

Failure model
-------------
A worker that dies (crash, kill, injected :class:`SimulatedCrash`)
closes its pipes; peers observe EOF (:class:`PeerLostError`) or a
receive timeout (:class:`CollectiveTimeout`) at the next collective and
report ``peer-lost`` to the controller before exiting.  The controller
tears the generation down and relaunches at ``world_size - dead`` —
graceful degradation rather than a lost run.  Rank 0 checkpoints
through the ordinary :class:`~repro.runtime.TrainingSupervisor`
machinery, and the rebuilt generation resumes from the newest
checkpoint; the checkpoint fingerprint deliberately excludes world
size, so a smaller group accepts the larger group's checkpoints.
Injected fault plans apply to generation 0 only — a rebuilt group runs
clean.  Relaunches go through :func:`repro.runtime.retry_call` for
jittered backoff between generations.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.dist.collective import Collective, CollectiveError
from repro.dist.trainer import DistConfig, DistributedTrainer
from repro.obs import MetricsRegistry, get_registry
from repro.runtime.faults import FaultPlan, SimulatedCrash
from repro.runtime.retry import RetryExhaustedError, retry_call
from repro.utils.logging import ProgressLogger
from repro.utils.seeding import seed_everything, spawn_rng


class WorkerGroupError(RuntimeError):
    """The group could not complete the run (rebuild budget exhausted)."""


class _GenerationFailed(RuntimeError):
    """Internal: one generation lost workers and must be rebuilt."""

    def __init__(self, dead_ranks: List[int], detail: str):
        super().__init__(detail)
        self.dead_ranks = dead_ranks


@dataclass
class WorkerSpec:
    """Everything a worker process needs to reconstruct its replica.

    ``builder`` must be a module-level callable (picklable by qualified
    name) returning a data-parallel task; ``task_kwargs`` are passed to
    it verbatim inside the worker.
    """

    builder: Callable[..., Any]
    task_kwargs: Dict[str, Any] = field(default_factory=dict)
    dist: DistConfig = field(default_factory=DistConfig)
    seed: int = 0
    dtype: str = "float64"
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 0
    keep: int = 3
    resume: bool = False
    fault_plan: Optional[FaultPlan] = None
    fault_rank: Optional[int] = None
    warmup: Optional[Callable[..., Any]] = None
    warmup_kwargs: Dict[str, Any] = field(default_factory=dict)
    profile: bool = False
    profile_out: Optional[str] = None
    profile_top: int = 12
    quiet: bool = True


@dataclass
class DistReport:
    """What a completed (possibly rebuilt) distributed run produced."""

    world_size: int            #: world size of the finishing generation
    launched_world_size: int   #: world size requested at launch
    generations: int           #: generations run (1 = no rebuilds)
    result: Any = None         #: rank 0's task result (e.g. history)
    final_state: Optional[Dict[str, Any]] = None  #: rank 0 state_dict
    supervisor: Optional[Dict[str, Any]] = None   #: rank 0 run counters
    profile_render: Optional[str] = None
    rank_metrics: List[Dict] = field(default_factory=list)
    wall_seconds: float = 0.0

    def merged_metrics(self) -> MetricsRegistry:
        """Aggregate every rank's metrics dump into one registry."""
        registry = MetricsRegistry()
        for dump in self.rank_metrics:
            registry.merge(dump)
        return registry


# ----------------------------------------------------------------------
# Worker process entry point (module-level: spawn-picklable)
# ----------------------------------------------------------------------
def _worker_entry(spec: WorkerSpec, rank: int, world_size: int,
                  generation: int, peer_conns: Dict[int, Any],
                  report_conn) -> None:
    from repro.autograd import set_default_dtype

    set_default_dtype(np.float64 if spec.dtype == "float64" else np.float32)
    seed_everything(spec.seed)
    registry = get_registry()
    registry.gauge("dist.rank").set(rank)
    registry.gauge("dist.world_size").set(world_size)
    registry.gauge("dist.generation").set(generation)
    collective = Collective(rank, world_size, peer_conns,
                            timeout=spec.dist.timeout, metrics=registry)
    logger = ProgressLogger(f"dist-rank{rank}", enabled=not spec.quiet)
    try:
        task = spec.builder(**spec.task_kwargs)
        trainer = DistributedTrainer(task, collective, spec.dist,
                                     metrics=registry)

        # Resume happens on rank 0 only (it owns the checkpoint store);
        # sync_initial_state then replicates whatever rank 0 holds —
        # restored checkpoint or fresh initialisation — to every rank.
        if rank == 0 and spec.resume and spec.checkpoint_dir:
            from repro.runtime.checkpoint import (
                CheckpointManager, config_fingerprint,
            )

            manager = CheckpointManager(
                spec.checkpoint_dir, keep=spec.keep,
                fingerprint=config_fingerprint(trainer.fingerprint_data()),
                logger=logger,
            )
            checkpoint = manager.load_latest()
            if checkpoint is not None:
                task.load_state_dict(checkpoint.payload)
                logger.log(f"resuming from iteration {checkpoint.iteration}")
        trainer.sync_initial_state()

        from repro.runtime.supervisor import TrainingSupervisor

        fault_plan = (
            spec.fault_plan
            if generation == 0 and rank == spec.fault_rank else None
        )
        supervisor = TrainingSupervisor(
            trainer,
            checkpoint_dir=spec.checkpoint_dir if rank == 0 else None,
            checkpoint_every=spec.checkpoint_every if rank == 0 else 0,
            keep=spec.keep,
            resume=False,  # handled collectively above
            fault_plan=fault_plan,
            logger=logger,
        )

        profile_render = None
        if spec.profile and rank == 0:
            from repro.obs import profile

            with profile() as prof:
                report = supervisor.run()
            if spec.profile_out:
                prof.export_chrome_trace(spec.profile_out)
            profile_render = prof.render(top=spec.profile_top)
        else:
            report = supervisor.run()

        collective.barrier()  # everyone finished before anyone reports
        payload: Dict[str, Any] = {"metrics": registry.dump()}
        if rank == 0:
            payload.update(
                result=task.result(),
                final_state=task.state_dict(),
                supervisor={
                    "iterations": report.iterations,
                    "resumed_from": report.resumed_from,
                    "skipped_steps": report.skipped_steps,
                    "rollbacks": report.rollbacks,
                    "checkpoint_writes": report.checkpoint_writes,
                    "wall_seconds": report.wall_seconds,
                },
                profile_render=profile_render,
            )
        report_conn.send(("done", rank, payload))
        report_conn.close()
        collective.close()
    except SimulatedCrash:
        # Die the way a killed process does: no report, no cleanup —
        # peers find out through EOF on the pipes.
        os._exit(17)
    except CollectiveError as exc:
        try:
            report_conn.send(("peer-lost", rank, {"error": str(exc)}))
        except (BrokenPipeError, OSError):
            pass
        os._exit(18)
    except BaseException as exc:  # noqa: BLE001 — ship the failure home
        try:
            report_conn.send((
                "error", rank,
                {"error": repr(exc), "traceback": traceback.format_exc()},
            ))
        except (BrokenPipeError, OSError):
            pass
        sys.exit(1)


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------
class WorkerGroup:
    """Launch and supervise one data-parallel worker fleet."""

    def __init__(self, spec: WorkerSpec, world_size: int,
                 max_rebuilds: int = 2, poll_interval: float = 0.05,
                 logger: Optional[ProgressLogger] = None):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.spec = spec
        self.world_size = world_size
        self.max_rebuilds = max_rebuilds
        self.poll_interval = poll_interval
        self.logger = logger or ProgressLogger("dist-group", enabled=False)
        self._ctx = multiprocessing.get_context("spawn")

    # ------------------------------------------------------------------
    def run(self) -> DistReport:
        """Run to completion, rebuilding after worker failures."""
        started = time.perf_counter()
        if self.spec.warmup is not None:
            self.spec.warmup(**self.spec.warmup_kwargs)

        # Each retry attempt is one generation; on failure the closure
        # shrinks the world, switches to resume, strips injected faults,
        # and re-raises so retry_call supplies the jittered backoff.
        state = {"spec": self.spec, "world": self.world_size, "generation": 0}

        def attempt() -> DistReport:
            try:
                return self._run_generation(
                    state["spec"], state["world"], state["generation"]
                )
            except _GenerationFailed as failure:
                survivors = state["world"] - max(1, len(failure.dead_ranks))
                self.logger.log(
                    f"generation {state['generation']} lost rank(s) "
                    f"{failure.dead_ranks}: {failure}"
                )
                if survivors < 1:
                    raise WorkerGroupError(
                        f"no surviving workers: {failure}"
                    ) from failure
                state["world"] = survivors
                state["generation"] += 1
                state["spec"] = replace(
                    state["spec"],
                    resume=bool(state["spec"].checkpoint_dir),
                    fault_plan=None,
                    fault_rank=None,
                )
                raise

        try:
            report = retry_call(
                attempt,
                attempts=self.max_rebuilds + 1,
                base_delay=0.1,
                retry_on=(_GenerationFailed,),
                describe="distributed worker group",
                rng=spawn_rng("dist-rebuild"),
                logger=self.logger,
            )
        except RetryExhaustedError as exc:
            raise WorkerGroupError(
                f"distributed run failed after "
                f"{state['generation'] + 1} generation(s): {exc}"
            ) from exc
        report.launched_world_size = self.world_size
        report.generations = state["generation"] + 1
        report.wall_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _run_generation(self, spec: WorkerSpec, world: int,
                        generation: int) -> DistReport:
        # Full pipe mesh between workers + a report pipe per worker.
        mesh: Dict[int, Dict[int, Any]] = {r: {} for r in range(world)}
        for i in range(world):
            for j in range(i + 1, world):
                conn_i, conn_j = self._ctx.Pipe(duplex=True)
                mesh[i][j] = conn_i
                mesh[j][i] = conn_j
        report_conns = {}
        processes: Dict[int, Any] = {}
        for rank in range(world):
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            report_conns[rank] = parent_conn
            process = self._ctx.Process(
                target=_worker_entry,
                args=(spec, rank, world, generation, mesh[rank], child_conn),
                name=f"dist-worker-{generation}-{rank}",
                daemon=True,
            )
            process.start()
            processes[rank] = process
            child_conn.close()
        # Close the controller's handles on the worker mesh so a dead
        # worker's peers see EOF instead of a forever-open pipe.
        for rank in range(world):
            for conn in mesh[rank].values():
                conn.close()

        payloads: Dict[int, Dict[str, Any]] = {}
        failures: Dict[int, str] = {}
        try:
            pending = set(range(world))
            # After the first failure, keep draining reports for a grace
            # window so every casualty is classified (peer-lost reports
            # mark survivors; silent exits mark the truly dead ranks).
            grace_deadline: Optional[float] = None
            while pending:
                if failures and grace_deadline is None:
                    grace_deadline = time.time() + 2.0
                if grace_deadline is not None and time.time() > grace_deadline:
                    break
                progressed = False
                for rank in sorted(pending):
                    conn = report_conns[rank]
                    if conn.poll(0):
                        try:
                            kind, _, payload = conn.recv()
                        except EOFError:
                            failures[rank] = "worker died without reporting"
                            pending.discard(rank)
                            continue
                        progressed = True
                        pending.discard(rank)
                        if kind == "done":
                            payloads[rank] = payload
                        elif kind == "peer-lost":
                            failures[rank] = f"peer lost: {payload['error']}"
                        else:
                            failures[rank] = payload.get(
                                "traceback", payload.get("error", "unknown")
                            )
                    elif not processes[rank].is_alive():
                        # Dead without a final report — a crash.
                        failures[rank] = (
                            f"worker exited with code "
                            f"{processes[rank].exitcode}"
                        )
                        pending.discard(rank)
                if not progressed:
                    time.sleep(self.poll_interval)
        finally:
            deadline = time.time() + 10.0
            for rank, process in processes.items():
                process.join(max(0.1, deadline - time.time()))
                if process.is_alive():
                    process.terminate()
                    process.join(5.0)
            for conn in report_conns.values():
                conn.close()

        if failures:
            # "peer lost" reporters are survivors; the truly dead ranks
            # are the ones that never reported or crashed outright.
            dead = sorted(
                rank for rank, reason in failures.items()
                if "peer lost" not in reason
            ) or sorted(failures)[:1]
            detail = "; ".join(
                f"rank {rank}: {reason.strip().splitlines()[-1]}"
                for rank, reason in sorted(failures.items())
            )
            hard_errors = [
                reason for reason in failures.values()
                if "peer lost" not in reason and "worker exited" not in reason
                and "worker died" not in reason
            ]
            if hard_errors and len(hard_errors) == len(failures):
                # Every failure is a real exception (bad config, bug):
                # rebuilding would fail identically, so surface it.
                raise WorkerGroupError(detail)
            raise _GenerationFailed(dead, detail)

        root = payloads[0]
        return DistReport(
            world_size=world,
            launched_world_size=world,
            generations=generation + 1,
            result=root.get("result"),
            final_state=root.get("final_state"),
            supervisor=root.get("supervisor"),
            profile_render=root.get("profile_render"),
            rank_metrics=[payloads[r]["metrics"] for r in sorted(payloads)],
        )
