"""Data-parallel step engine: replicated state, reduced gradients.

:class:`DistributedTrainer` is a :class:`repro.runtime.SupervisedTask`
facade over a :class:`repro.dist.tasks.DataParallelTask`, so one
:class:`~repro.runtime.TrainingSupervisor` per rank drives the whole
distributed run — anomaly guards, skip/rollback, and (on rank 0)
checkpointing all work unchanged.

Determinism contract
--------------------
Every iteration's *global* batch is cut into ``grad_shards`` fixed
micro-batch slots by the task's :class:`~repro.dist.ShardedSampler`.
In the default ``canonical`` mode each slot's weighted gradient bucket
is computed by exactly one rank (with a per-``(iteration, slot)`` RNG
stream, so the result is rank-independent), shipped to every rank, and
summed **in slot order** everywhere.  The reduced gradient is therefore
a pure function of the global seed and iteration — bit-identical for
1, 2, or 4 workers — and since every rank then applies the identical
optimiser step, model replicas never drift.

``bucketed`` mode instead accumulates each rank's owned slots locally
and runs a ring all-reduce over fixed-size buckets: cheaper on the wire
(each rank ships its partial sum once instead of every slot bucket),
deterministic for a *fixed* world size, but not bit-exact across world
sizes (ring accumulation order depends on the ring length).

In canonical mode with ``overlap=True`` a communication thread streams
slot buckets (in slot order) while the main thread is still computing
the remaining owned slots — the all-reduce/broadcast traffic for slot
``k`` overlaps the backward pass of slot ``k+1``.

Anomalies and rollback stay replicated: the reduced loss and gradients
are identical on every rank, so every rank's guard reaches the same
verdict, and ``load_state_dict`` broadcasts rank 0's payload before
applying it — a rollback (rank 0 restoring a checkpoint, other ranks
holding only their run-start snapshot) converges back to one state.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.dist.collective import Collective
from repro.dist.flatten import TensorManifest, flatten_tensors
from repro.dist.sampler import slot_bounds
from repro.obs import MetricsRegistry, get_registry, trace_span
from repro.runtime.supervisor import SupervisedTask

#: (weighted flat gradient bucket, weighted loss, weighted components)
SlotPayload = Tuple[np.ndarray, float, Dict[str, float]]


@dataclass
class DistConfig:
    """Algorithmic knobs of the data-parallel runtime."""

    grad_shards: int = 4      #: micro-batch slots per global batch
    mode: str = "canonical"   #: "canonical" (bit-exact) or "bucketed"
    overlap: bool = True      #: overlap comm with remaining slot compute
    bucket_bytes: int = 1 << 20  #: ring all-reduce bucket size (bucketed mode)
    timeout: float = 120.0    #: per-receive straggler timeout (seconds)

    def __post_init__(self):
        if self.grad_shards < 1:
            raise ValueError("grad_shards must be >= 1")
        if self.mode not in ("canonical", "bucketed"):
            raise ValueError(f"unknown dist mode {self.mode!r}")


class DistributedTrainer(SupervisedTask):
    """Drive one rank of a replicated training run."""

    def __init__(
        self,
        task,
        collective: Collective,
        config: Optional[DistConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.task = task
        self.collective = collective
        self.config = config or DistConfig()
        self.metrics = metrics if metrics is not None else get_registry()
        if task.sampler.grad_shards != self.config.grad_shards:
            raise ValueError(
                f"task sampler has {task.sampler.grad_shards} grad shards, "
                f"config expects {self.config.grad_shards}"
            )
        self._templates = [p.data for p in task.parameters()]
        self._manifest = TensorManifest.of(self._templates)
        bounds = slot_bounds(self.config.grad_shards, collective.world_size)
        self._owner_of = [
            rank
            for rank, (lo, hi) in enumerate(bounds)
            for _ in range(hi - lo)
        ]
        self._mine = [
            s for s, owner in enumerate(self._owner_of)
            if owner == collective.rank
        ]

    # ------------------------------------------------------------------
    # SupervisedTask surface (iteration state lives in the inner task)
    # ------------------------------------------------------------------
    @property
    def iteration(self) -> int:
        return self.task.iteration

    @property
    def total_iterations(self) -> int:
        return self.task.total_iterations

    @property
    def eval_every(self) -> int:
        return self.task.eval_every

    def parameters(self) -> List:
        return self.task.parameters()

    def periodic_eval(self) -> None:
        # Evaluation runs on *every* rank: it is deterministic given the
        # (replicated) weights, and running it everywhere keeps each
        # rank's recorded history — part of the checkpoint payload and
        # the bit-exactness assertion — identical.
        self.task.periodic_eval()

    def finalize(self) -> None:
        self.task.finalize()

    def result(self) -> Any:
        return self.task.result()

    def fingerprint_data(self) -> Dict[str, Any]:
        # Deliberately excludes world size: after a worker failure the
        # group rebuilds smaller and must still resume rank 0's
        # checkpoints.  grad_shards *is* included — it changes the
        # micro-batch decomposition and hence the training trajectory.
        data = dict(self.task.fingerprint_data())
        data["dist"] = {
            "grad_shards": self.config.grad_shards,
            "mode": self.config.mode,
        }
        return data

    def state_dict(self) -> Dict[str, Any]:
        return self.task.state_dict()

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore rank 0's payload on every rank.

        Called collectively.  The local argument only matters on rank 0;
        other ranks discard theirs and apply the broadcast copy, which
        makes resume *and* supervisor rollback (where only rank 0 holds
        a checkpoint manager) converge to one replicated state.
        """
        payload = self.collective.broadcast(
            state if self.collective.rank == 0 else None, root=0
        )
        self.task.load_state_dict(payload)

    def sync_initial_state(self) -> None:
        """Broadcast rank 0's current state so every replica starts equal."""
        self.load_state_dict(self.state_dict())

    # ------------------------------------------------------------------
    # The distributed step
    # ------------------------------------------------------------------
    def forward_backward(self) -> float:
        iteration = self.task.iteration  # 0-based index of the upcoming step
        sampler = self.task.sampler
        slots = sampler.slots(iteration)
        weights = sampler.slot_weights(iteration)
        with self.metrics.timer("dist.step_seconds"), trace_span("dist.step"):
            if self.config.mode == "canonical":
                payloads = self._exchange_canonical(iteration, slots, weights)
                flat = np.zeros(self._manifest.total_size,
                                dtype=self._manifest.flat_dtype)
                loss = 0.0
                components: Dict[str, float] = {}
                # Slot-order summation on every rank: the reduction is a
                # pure function of the slot payloads, not of world size.
                for slot_id in range(len(slots)):
                    slot_flat, slot_loss, slot_components = payloads[slot_id]
                    flat += slot_flat
                    loss += slot_loss
                    for key, value in slot_components.items():
                        components[key] = components.get(key, 0.0) + value
            else:
                flat, loss, components = self._exchange_bucketed(
                    iteration, slots, weights
                )
        self.task.install_reduced(flat, self._manifest, loss, components)
        return loss

    def apply_step(self, loss: float) -> None:
        self.task.apply_step(loss)
        self.metrics.counter("dist.steps").inc()
        self.metrics.gauge(
            f"dist.rank{self.collective.rank}.step"
        ).set(self.task.iteration)

    def skip_step(self) -> None:
        # The guard verdict is identical on every rank (same loss, same
        # reduced gradients), so skips stay collectively consistent.
        self.task.skip_step()

    # ------------------------------------------------------------------
    # Slot computation and exchange
    # ------------------------------------------------------------------
    def _compute_slot(self, iteration: int, slot_id: int,
                      indices: np.ndarray, weight: float) -> SlotPayload:
        if len(indices) == 0 or weight == 0.0:
            flat = np.zeros(self._manifest.total_size,
                            dtype=self._manifest.flat_dtype)
            return flat, 0.0, {}
        with trace_span(f"dist.slot{slot_id}"):
            loss, components = self.task.slot_forward_backward(
                iteration, slot_id, indices
            )
            grads = [p.grad for p in self.task.parameters()]
            flat, _ = flatten_tensors(grads, like=self._templates,
                                      manifest=self._manifest)
        flat *= weight
        return flat, loss * weight, {
            key: value * weight for key, value in components.items()
        }

    def _exchange_canonical(
        self, iteration: int, slots: List[np.ndarray], weights: List[float]
    ) -> Dict[int, SlotPayload]:
        """Every rank ends up holding every slot's weighted payload."""
        rank = self.collective.rank
        if self.collective.world_size == 1:
            return {
                s: self._compute_slot(iteration, s, slots[s], weights[s])
                for s in self._mine
            }
        payloads: Dict[int, SlotPayload] = {}
        if not self.config.overlap:
            for s in self._mine:
                payloads[s] = self._compute_slot(
                    iteration, s, slots[s], weights[s]
                )
            for s in range(len(slots)):
                owner = self._owner_of[s]
                obj = payloads.get(s) if owner == rank else None
                payloads[s] = self.collective.broadcast(obj, root=owner)
            return payloads

        # Overlapped: the comm thread walks slots in order, broadcasting
        # each from its owner, while the main thread keeps computing the
        # remaining owned slots and feeding them through the queue.
        ready: "queue.Queue[SlotPayload]" = queue.Queue()
        failures: List[BaseException] = []

        def pump() -> None:
            try:
                for s in range(len(slots)):
                    owner = self._owner_of[s]
                    obj = ready.get() if owner == rank else None
                    payloads[s] = self.collective.broadcast(obj, root=owner)
            except BaseException as exc:  # surfaced on the main thread
                failures.append(exc)

        pump_thread = threading.Thread(
            target=pump, name="dist-comm", daemon=True
        )
        pump_thread.start()
        try:
            for s in self._mine:
                ready.put(self._compute_slot(iteration, s, slots[s], weights[s]))
        except BaseException:
            # The comm thread is daemonic and times out on its own; the
            # worker is about to die and the group will rebuild.
            raise
        pump_thread.join()
        if failures:
            raise failures[0]
        return payloads

    def _exchange_bucketed(
        self, iteration: int, slots: List[np.ndarray], weights: List[float]
    ) -> Tuple[np.ndarray, float, Dict[str, float]]:
        """Locally accumulate owned slots, then ring all-reduce buckets."""
        local = np.zeros(self._manifest.total_size,
                         dtype=self._manifest.flat_dtype)
        local_loss = 0.0
        local_components: Dict[str, float] = {}
        for s in self._mine:
            slot_flat, slot_loss, slot_components = self._compute_slot(
                iteration, s, slots[s], weights[s]
            )
            local += slot_flat
            local_loss += slot_loss
            for key, value in slot_components.items():
                local_components[key] = local_components.get(key, 0.0) + value

        reduced = np.empty_like(local)
        step = max(1, self.config.bucket_bytes // local.dtype.itemsize)
        for start in range(0, max(1, local.size), step):
            reduced[start:start + step] = self.collective.all_reduce(
                local[start:start + step]
            )

        # Scalars reduce in rank order (deterministic for a fixed world).
        gathered = self.collective.all_gather((local_loss, local_components))
        loss = 0.0
        components: Dict[str, float] = {}
        for rank_loss, rank_components in gathered:
            loss += rank_loss
            for key, value in rank_components.items():
                components[key] = components.get(key, 0.0) + value
        return reduced, loss, components
