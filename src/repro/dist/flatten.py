"""Flattened gradient buckets: pack many arrays into one wire buffer.

Collectives operate on single contiguous arrays, but gradients live as
one array per parameter.  :func:`flatten_tensors` concatenates a list
of arrays into one flat buffer and records a :class:`TensorManifest`
(shapes, dtypes, offsets) so :func:`unflatten_tensors` can recover the
originals — as *views* into the flat buffer when dtypes allow, which is
what lets the distributed trainer hand the optimiser per-parameter
gradients that alias the reduced bucket (scaling the bucket in
:func:`repro.optim.clip_grad_norm` then scales every gradient).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TensorManifest:
    """Layout of a flattened bucket: per-tensor shapes, dtypes, offsets.

    The manifest is what makes a bucket self-describing on the wire: a
    receiving rank validates an incoming buffer against its own manifest
    before trusting it (shape/dtype drift between ranks is a bug, not
    something to silently reinterpret).
    """

    shapes: Tuple[Tuple[int, ...], ...]
    dtypes: Tuple[str, ...]
    offsets: Tuple[int, ...] = field(default=())  #: start index per tensor
    total_size: int = 0
    flat_dtype: str = "float64"

    @classmethod
    def of(cls, arrays: Sequence[np.ndarray]) -> "TensorManifest":
        shapes = tuple(tuple(a.shape) for a in arrays)
        dtypes = tuple(str(a.dtype) for a in arrays)
        sizes = [int(np.prod(s)) if s else 1 for s in shapes]
        offsets = tuple(int(v) for v in np.cumsum([0] + sizes[:-1]))
        flat_dtype = str(np.result_type(*[np.dtype(d) for d in dtypes]))
        return cls(shapes=shapes, dtypes=dtypes, offsets=offsets,
                   total_size=int(sum(sizes)), flat_dtype=flat_dtype)

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(int(np.prod(s)) if s else 1 for s in self.shapes)

    def validate(self, flat: np.ndarray) -> None:
        if flat.ndim != 1 or flat.size != self.total_size:
            raise ValueError(
                f"flat buffer has {flat.size} elements, manifest expects "
                f"{self.total_size}"
            )
        if str(flat.dtype) != self.flat_dtype:
            raise ValueError(
                f"flat buffer dtype {flat.dtype} does not match manifest "
                f"dtype {self.flat_dtype}"
            )


def flatten_tensors(
    arrays: Sequence[Optional[np.ndarray]],
    like: Optional[Sequence[np.ndarray]] = None,
    manifest: Optional[TensorManifest] = None,
) -> Tuple[np.ndarray, TensorManifest]:
    """Concatenate arrays into one flat buffer plus its manifest.

    ``None`` entries (parameters that received no gradient this step)
    are zero-filled using the matching entry of ``like`` for shape and
    dtype, so every rank ships buckets with identical layouts.
    """
    resolved: List[np.ndarray] = []
    for index, array in enumerate(arrays):
        if array is None:
            if like is None:
                raise ValueError(
                    f"array {index} is None and no 'like' templates given"
                )
            template = like[index]
            array = np.zeros(template.shape, dtype=template.dtype)
        resolved.append(np.asarray(array))
    if manifest is None:
        manifest = TensorManifest.of(resolved)
    flat = np.empty(manifest.total_size, dtype=manifest.flat_dtype)
    for array, offset, size in zip(resolved, manifest.offsets, manifest.sizes):
        flat[offset:offset + size] = array.reshape(-1)
    return flat, manifest


def unflatten_tensors(
    flat: np.ndarray, manifest: TensorManifest, copy: bool = False
) -> List[np.ndarray]:
    """Recover per-tensor arrays from a flat buffer.

    With ``copy=False`` each returned array is a reshaped *view* of the
    buffer whenever its dtype matches the buffer's dtype — mutating the
    buffer in place (e.g. gradient clipping) is then visible through
    every view.
    """
    manifest.validate(flat)
    out: List[np.ndarray] = []
    for shape, dtype, offset, size in zip(
        manifest.shapes, manifest.dtypes, manifest.offsets, manifest.sizes
    ):
        chunk = flat[offset:offset + size].reshape(shape)
        if str(chunk.dtype) != dtype:
            chunk = chunk.astype(dtype)
        elif copy:
            chunk = chunk.copy()
        out.append(chunk)
    return out
