"""Deterministic sharded sampling for data-parallel training.

:class:`ShardedSampler` gives every rank the same view of the epoch:
the per-epoch permutation is derived from ``spawn_rng`` with an
epoch-indexed tag (so it is a pure function of the global seed and the
epoch number — independent of rank, world size, and whatever else the
process drew before), and each iteration's *global* batch is cut into
``grad_shards`` fixed micro-batch slots.  Ranks own disjoint,
contiguous ranges of slots; changing the world size only changes which
rank computes a slot, never the slot's contents.  That fixed
decomposition is what makes N-worker training bit-exact against the
single-process run: gradients are produced per slot and summed in slot
order on every rank.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils.seeding import spawn_rng


def slot_bounds(total: int, parts: int) -> List[Tuple[int, int]]:
    """Balanced contiguous partition of ``range(total)`` into ``parts``."""
    return [
        ((i * total) // parts, ((i + 1) * total) // parts)
        for i in range(parts)
    ]


def owned_slots(rank: int, world_size: int, grad_shards: int) -> List[int]:
    """Slot ids computed by ``rank`` — contiguous, balanced, disjoint."""
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} outside world of {world_size}")
    start, stop = slot_bounds(grad_shards, world_size)[rank]
    return list(range(start, stop))


class ShardedSampler:
    """Rank-invariant epoch shuffling and micro-batch slot decomposition.

    Mirrors ``YolloTrainer``'s epoch arithmetic (``ceil(n / batch)``
    iterations per epoch, last batch short) but derives each epoch's
    permutation from a seeded stream instead of consuming the trainer's
    RNG, so every rank reconstructs the identical order locally with no
    communication.
    """

    def __init__(self, num_samples: int, batch_size: int, grad_shards: int,
                 seed_tag: str = "dist-sampler"):
        if num_samples < 1:
            raise ValueError("ShardedSampler needs at least one sample")
        if batch_size < 1 or grad_shards < 1:
            raise ValueError("batch_size and grad_shards must be >= 1")
        self.num_samples = num_samples
        self.batch_size = batch_size
        self.grad_shards = grad_shards
        self.seed_tag = seed_tag
        self._epoch = -1
        self._order: np.ndarray = np.empty(0, dtype=np.int64)

    def iterations_per_epoch(self) -> int:
        full, remainder = divmod(self.num_samples, self.batch_size)
        return full + (1 if remainder else 0)

    def epoch_order(self, epoch: int) -> np.ndarray:
        """The epoch's sample permutation (cached per epoch)."""
        if epoch != self._epoch:
            rng = spawn_rng(f"{self.seed_tag}-epoch{epoch}")
            self._order = rng.permutation(self.num_samples)
            self._epoch = epoch
        return self._order

    def global_batch(self, iteration: int) -> np.ndarray:
        """Sample indices of the global batch for a 0-based iteration."""
        per_epoch = self.iterations_per_epoch()
        epoch, position = divmod(iteration, per_epoch)
        order = self.epoch_order(epoch)
        return order[position * self.batch_size:(position + 1) * self.batch_size]

    def slots(self, iteration: int) -> List[np.ndarray]:
        """The iteration's global batch cut into ``grad_shards`` slots.

        Slots are contiguous ranges of the (shuffled) global batch; a
        short final batch simply yields smaller (possibly empty) slots.
        """
        batch = self.global_batch(iteration)
        return [batch[lo:hi] for lo, hi in slot_bounds(len(batch), self.grad_shards)]

    def slot_weights(self, iteration: int) -> List[float]:
        """Per-slot loss weights: ``len(slot) / len(global batch)``.

        A per-slot loss is a mean over the slot's samples; scaling by
        these weights and summing over slots reproduces the mean over
        the full global batch.
        """
        batch_len = len(self.global_batch(iteration))
        return [
            (hi - lo) / float(batch_len)
            for lo, hi in slot_bounds(batch_len, self.grad_shards)
        ]
