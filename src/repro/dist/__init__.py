"""Distributed data-parallel training runtime.

Process-based workers (``spawn``), a pipe-mesh collective layer with a
deterministic ring all-reduce, sharded sampling, and a replicated-step
trainer that keeps N workers bit-exact with a single-process run.  See
DESIGN.md ("Distributed training") for the protocol, the determinism
contract, and the failure model.

Everything exported here is importable under the ``spawn`` start
method: module-level classes and functions only, no closures.
"""

from repro.dist.collective import (
    Collective,
    CollectiveError,
    CollectiveTimeout,
    PeerLostError,
    ProtocolError,
)
from repro.dist.flatten import TensorManifest, flatten_tensors, unflatten_tensors
from repro.dist.sampler import ShardedSampler, owned_slots, slot_bounds
from repro.dist.tasks import (
    PretrainDistTask,
    YolloDistTask,
    build_pretrain_task,
    build_yollo_task,
    warm_backbone,
)
from repro.dist.trainer import DistConfig, DistributedTrainer
from repro.dist.worker import (
    DistReport,
    WorkerGroup,
    WorkerGroupError,
    WorkerSpec,
)

__all__ = [
    "Collective",
    "CollectiveError",
    "CollectiveTimeout",
    "PeerLostError",
    "ProtocolError",
    "TensorManifest",
    "flatten_tensors",
    "unflatten_tensors",
    "ShardedSampler",
    "owned_slots",
    "slot_bounds",
    "PretrainDistTask",
    "YolloDistTask",
    "build_pretrain_task",
    "build_yollo_task",
    "warm_backbone",
    "DistConfig",
    "DistributedTrainer",
    "DistReport",
    "WorkerGroup",
    "WorkerGroupError",
    "WorkerSpec",
]
