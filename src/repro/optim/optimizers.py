"""Optimisers operating on :class:`repro.nn.Parameter` lists."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd import Tensor


class Optimizer:
    """Base optimiser: holds parameters and clears gradients."""

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) — the optimiser used to train YOLLO."""

    def __init__(self, parameters, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
