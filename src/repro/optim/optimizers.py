"""Optimisers operating on :class:`repro.nn.Parameter` lists."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.autograd import Tensor


def _load_buffers(target: List[np.ndarray], source, parameters: List[Tensor],
                  label: str) -> None:
    """Copy serialized moment buffers into ``target``, validating layout."""
    if len(source) != len(parameters):
        raise ValueError(
            f"optimizer state mismatch: {len(source)} {label} buffers for "
            f"{len(parameters)} parameters"
        )
    for index, (buffer, param) in enumerate(zip(source, parameters)):
        value = np.asarray(buffer)
        if value.shape != param.data.shape:
            raise ValueError(
                f"optimizer state mismatch: {label}[{index}] has shape "
                f"{value.shape}, parameter has {param.data.shape}"
            )
        target[index] = value.astype(param.data.dtype, copy=True)


class Optimizer:
    """Base optimiser: holds parameters and clears gradients."""

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Persistence (checkpoint/resume support)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Snapshot the optimiser's mutable state (copies)."""
        return {"type": type(self).__name__, "lr": self.lr}

    def load_state_dict(self, state: Dict) -> None:
        """Restore state written by :meth:`state_dict`.

        Raises ``ValueError`` when the snapshot belongs to a different
        optimiser class or does not match the parameter layout.
        """
        if state.get("type") != type(self).__name__:
            raise ValueError(
                f"optimizer state was written by {state.get('type')!r}, "
                f"cannot load into {type(self).__name__}"
            )
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def state_dict(self) -> Dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        _load_buffers(self._velocity, state["velocity"], self.parameters, "velocity")


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) — the optimiser used to train YOLLO."""

    def __init__(self, parameters, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict:
        state = super().state_dict()
        state["step_count"] = self._step_count
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        _load_buffers(self._m, state["m"], self.parameters, "m")
        _load_buffers(self._v, state["v"], self.parameters, "v")


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float, *,
                   flat: np.ndarray = None) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).  A
    non-finite total norm leaves every gradient untouched: scaling by
    ``max_norm / nan`` would poison all parameters, whereas leaving the
    gradients alone lets anomaly guards detect and skip the step.

    When ``flat`` is given it must be the flattened-bucket view of the
    same gradients (every ``param.grad`` aliasing a slice of it, as the
    distributed trainer arranges): the norm is computed over the single
    buffer and the buffer is scaled in place, which both clips every
    gradient through its view and makes the computation identical on
    every data-parallel rank regardless of parameter count.
    """
    if flat is not None:
        total = float(np.sqrt(float((flat**2).sum())))
        if not np.isfinite(total):
            return total
        if total > max_norm and total > 0.0:
            flat *= max_norm / total
        return total
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if not np.isfinite(total):
        return total
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
