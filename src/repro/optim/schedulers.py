"""Learning-rate schedules driving :class:`repro.optim.Optimizer` objects."""

from __future__ import annotations

import math
from typing import Dict

from repro.optim.optimizers import Optimizer


class _Scheduler:
    """Base scheduler: call :meth:`step` once per optimisation step."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def step(self) -> float:
        self.step_count += 1
        lr = self.compute_lr(self.step_count)
        self.optimizer.lr = lr
        return lr

    def compute_lr(self, step: int) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Persistence (checkpoint/resume support)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Snapshot the schedule position so resume continues the decay."""
        return {
            "type": type(self).__name__,
            "step_count": self.step_count,
            "base_lr": self.base_lr,
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore state written by :meth:`state_dict`.

        Re-applies the schedule at the restored step so the optimiser's
        learning rate matches the uninterrupted run, instead of
        restarting the decay from step 0.
        """
        if state.get("type") != type(self).__name__:
            raise ValueError(
                f"scheduler state is for {state.get('type')!r}, "
                f"cannot load into {type(self).__name__}"
            )
        self.base_lr = float(state["base_lr"])
        self.step_count = int(state["step_count"])
        if self.step_count > 0:
            self.optimizer.lr = self.compute_lr(self.step_count)


class ConstantLR(_Scheduler):
    """Keep the learning rate fixed (the paper's configuration, lr=5e-5)."""

    def compute_lr(self, step: int) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class WarmupCosineLR(_Scheduler):
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int,
                 min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def compute_lr(self, step: int) -> float:
        if step <= self.warmup_steps and self.warmup_steps > 0:
            return self.base_lr * step / self.warmup_steps
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(max(progress, 0.0), 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
