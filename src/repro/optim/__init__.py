"""Gradient-descent optimisers and learning-rate schedules."""

from repro.optim.optimizers import SGD, Adam, Optimizer, clip_grad_norm
from repro.optim.schedulers import ConstantLR, StepLR, WarmupCosineLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "ConstantLR",
    "StepLR",
    "WarmupCosineLR",
]
