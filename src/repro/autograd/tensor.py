"""The :class:`Tensor` type and its primitive differentiable operations.

Gradients are accumulated with reverse-mode automatic differentiation over
a dynamically built computation graph.  Every operation records a backward
closure on the output tensor; :meth:`Tensor.backward` walks the graph in
reverse topological order.

Broadcasting follows numpy semantics; gradients flowing into a broadcast
operand are reduced back to the operand's shape by :func:`_unbroadcast`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Active float dtype for all tensors.  float64 by default (exact
#: gradient checking); switch to float32 with :func:`set_default_dtype`
#: for roughly 2x faster training in the experiment harness.
DEFAULT_DTYPE = np.float64

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def set_default_dtype(dtype) -> None:
    """Set the global float dtype (``np.float32`` or ``np.float64``)."""
    global DEFAULT_DTYPE
    dtype = np.dtype(dtype).type
    if dtype not in (np.float32, np.float64):
        raise ValueError("dtype must be float32 or float64")
    DEFAULT_DTYPE = dtype


def get_default_dtype():
    """Return the active float dtype."""
    return DEFAULT_DTYPE

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether gradient tracking is currently enabled."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to a float numpy array unless an
        integer array is explicitly provided (used for index tensors).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if array.dtype.kind not in ("f", "i", "u", "b"):
            raise TypeError(f"unsupported tensor dtype: {array.dtype}")
        if array.dtype.kind == "f" and array.dtype != DEFAULT_DTYPE:
            array = array.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = array
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=16)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"]) -> "Tensor":
        tracked = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = tracked
        if tracked:
            out._parents = tuple(parents)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=DEFAULT_DTYPE, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data, dtype=DEFAULT_DTYPE)
        else:
            grad = np.asarray(grad, dtype=DEFAULT_DTYPE)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data + other.data, (self, other))
        if out.requires_grad:
            a, b = self, other

            def backward(grad: np.ndarray) -> None:
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(grad, b.shape))

            out._backward = backward
        return out

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(as_tensor(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                a._accumulate(-grad)

            out._backward = backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data * other.data, (self, other))
        if out.requires_grad:
            a, b = self, other

            def backward(grad: np.ndarray) -> None:
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad * b.data, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(grad * a.data, b.shape))

            out._backward = backward
        return out

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data / other.data, (self, other))
        if out.requires_grad:
            a, b = self, other

            def backward(grad: np.ndarray) -> None:
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad / b.data, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(-grad * a.data / (b.data**2), b.shape))

            out._backward = backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make_child(self.data**exponent, (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad * exponent * a.data ** (exponent - 1))

            out._backward = backward
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product supporting batched operands (numpy @ semantics)."""
        other = as_tensor(other)
        out = self._make_child(self.data @ other.data, (self, other))
        if out.requires_grad:
            a, b = self, other

            def backward(grad: np.ndarray) -> None:
                if a.requires_grad:
                    if b.data.ndim == 1:
                        grad_a = np.multiply.outer(grad, b.data) if a.data.ndim > 1 else grad * b.data
                        if a.data.ndim == 1:
                            grad_a = grad * b.data
                    else:
                        grad_mat = grad[..., None, :] if a.data.ndim == 1 else grad
                        grad_a = grad_mat @ np.swapaxes(b.data, -1, -2)
                        if a.data.ndim == 1:
                            grad_a = grad_a.reshape(a.shape)
                    a._accumulate(_unbroadcast(np.asarray(grad_a), a.shape))
                if b.requires_grad:
                    if a.data.ndim == 1:
                        grad_b = np.multiply.outer(a.data, grad)
                        if b.data.ndim == 1:
                            grad_b = a.data * grad
                    else:
                        grad_mat = grad[..., :, None] if b.data.ndim == 1 else grad
                        grad_b = np.swapaxes(a.data, -1, -2) @ grad_mat
                        if b.data.ndim == 1:
                            grad_b = grad_b.sum(axis=tuple(range(grad_b.ndim - 2))).reshape(b.shape)
                    b._accumulate(_unbroadcast(np.asarray(grad_b), b.shape))

            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        out = self._make_child(value, (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad * value)

            out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad / a.data)

            out._backward = backward
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = self._make_child(value, (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad * (1.0 - value**2))

            out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(value, (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad * value * (1.0 - value))

            out._backward = backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make_child(self.data * mask, (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad * mask)

            out._backward = backward
        return out

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        slope = np.where(mask, 1.0, negative_slope)
        out = self._make_child(self.data * slope, (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad * slope)

            out._backward = backward
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = self._make_child(np.abs(self.data), (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad * sign)

            out._backward = backward
        return out

    def clip(self, low: Optional[float], high: Optional[float]) -> "Tensor":
        value = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)
        out = self._make_child(value, (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad * mask)

            out._backward = backward
        return out

    def maximum(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(np.maximum(self.data, other.data), (self, other))
        if out.requires_grad:
            a, b = self, other
            mask = a.data >= b.data

            def backward(grad: np.ndarray) -> None:
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad * mask, a.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(grad * ~mask, b.shape))

            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            a = self
            in_shape = a.shape

            def backward(grad: np.ndarray) -> None:
                g = grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(ax % len(in_shape) for ax in axes)
                    for ax in sorted(axes):
                        g = np.expand_dims(g, ax)
                a._accumulate(np.broadcast_to(g, in_shape).copy())

            out._backward = backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[ax] for ax in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(value, (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                g = grad
                v = value
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(ax % a.data.ndim for ax in axes)
                    for ax in sorted(axes):
                        g = np.expand_dims(g, ax)
                        v = np.expand_dims(v, ax)
                mask = a.data == v
                counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                a._accumulate(mask * g / counts)

            out._backward = backward
        return out

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,))
        if out.requires_grad:
            a = self
            original = a.shape

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad.reshape(original))

            out._backward = backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self._make_child(self.data.transpose(axes), (self,))
        if out.requires_grad:
            a = self
            inverse = tuple(np.argsort(axes))

            def backward(grad: np.ndarray) -> None:
                a._accumulate(grad.transpose(inverse))

            out._backward = backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def expand_dims(self, axis: int) -> "Tensor":
        shape = list(self.shape)
        shape.insert(axis if axis >= 0 else len(shape) + axis + 1, 1)
        return self.reshape(tuple(shape))

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        if axis is None:
            shape = tuple(s for s in self.shape if s != 1)
        else:
            if self.shape[axis] != 1:
                raise ValueError("cannot squeeze a non-singleton dimension")
            shape = tuple(s for i, s in enumerate(self.shape) if i != axis % self.ndim)
        return self.reshape(shape)

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,))
        if out.requires_grad:
            a = self

            def backward(grad: np.ndarray) -> None:
                full_grad = np.zeros_like(a.data, dtype=DEFAULT_DTYPE)
                np.add.at(full_grad, index, grad)
                a._accumulate(full_grad)

            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable; return plain numpy bool arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < as_tensor(other).data

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= as_tensor(other).data

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= as_tensor(other).data


# ----------------------------------------------------------------------
# Constructors and free functions
# ----------------------------------------------------------------------
def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a new tensor, copying the input data."""
    return Tensor(np.array(value, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def full(shape, fill_value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(shape, fill_value, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable select: ``condition`` is a boolean numpy mask."""
    a = as_tensor(a)
    b = as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out = a._make_child(np.where(condition, a.data, b.data), (a, b))
    if out.requires_grad:

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * condition, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * ~condition, b.shape))

        out._backward = backward
    return out


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = tensors[0]._make_child(data, tensors)
    if out.requires_grad:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, end)
                    t._accumulate(grad[tuple(slicer)])

        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new dimension."""
    expanded = [as_tensor(t).expand_dims(axis) for t in tensors]
    return concatenate(expanded, axis=axis)
