"""Reverse-mode automatic differentiation on top of numpy.

This package is the substrate that replaces PyTorch in this reproduction.
It provides a :class:`Tensor` with a dynamic computation graph, the full
set of primitive operations needed by the YOLLO model and its baselines
(dense linear algebra, convolution, pooling, softmax, embedding lookup),
and a finite-difference gradient checker used by the test suite.
"""

from repro.autograd.tensor import (
    get_default_dtype,
    set_default_dtype,
    Tensor,
    as_tensor,
    concatenate,
    no_grad,
    is_grad_enabled,
    stack,
    tensor,
    where,
    zeros,
    ones,
    full,
)
from repro.autograd.functional import (
    avg_pool2d,
    conv2d,
    embedding_lookup,
    log_softmax,
    max_pool2d,
    pad2d,
    softmax,
)
from repro.autograd.gradcheck import gradient_check

__all__ = [
    "Tensor",
    "as_tensor",
    "tensor",
    "zeros",
    "ones",
    "full",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "pad2d",
    "softmax",
    "log_softmax",
    "embedding_lookup",
    "gradient_check",
    "set_default_dtype",
    "get_default_dtype",
]
