"""Structured differentiable operations: convolution, pooling, softmax.

Convolution and pooling use an im2col strategy: the padded input is
gathered into a ``(N, C, KH, KW, OH, OW)`` column tensor with strided
slicing (one slice per kernel offset), after which the convolution is a
single ``tensordot``.  Backward passes scatter-add through the same
slices, which keeps both directions vectorised.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


#: Memoised gather indices for the fancy-indexing im2col path, keyed on
#: (padded height, padded width, kernel, stride).  Batch and channel
#: counts do not enter the key: the index addresses the flattened H*W
#: plane and broadcasts over the leading (N, C) axes.
_IM2COL_INDEX_CACHE: Dict[Tuple[int, int, int, int, int, int], np.ndarray] = {}
_IM2COL_CACHE_STATS = {"hits": 0, "misses": 0}

#: Column tensors up to this many elements use the memoised single-gather
#: path, where the per-call cost is dominated by Python/slice dispatch
#: rather than memory bandwidth.  Larger gathers fall back to the strided
#: slice loop, which moves big planes with contiguous copies and wins on
#: stem-sized feature maps.
_IM2COL_GATHER_MAX_ELEMENTS = 50_000


def _im2col_indices(
    h: int, w: int, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> np.ndarray:
    """Flat H*W gather indices of shape ``(KH, KW, OH, OW)``, memoised."""
    key = (h, w, kernel[0], kernel[1], stride[0], stride[1])
    index = _IM2COL_INDEX_CACHE.get(key)
    if index is None:
        _IM2COL_CACHE_STATS["misses"] += 1
        kh, kw = kernel
        sh, sw = stride
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
        rows = np.arange(kh)[:, None, None, None] + sh * np.arange(oh)[None, None, :, None]
        cols = np.arange(kw)[None, :, None, None] + sw * np.arange(ow)[None, None, None, :]
        index = rows * w + cols  # (KH, KW, OH, OW)
        _IM2COL_INDEX_CACHE[key] = index
    else:
        _IM2COL_CACHE_STATS["hits"] += 1
    return index


def im2col_cache_stats() -> Dict[str, int]:
    """Hit/miss counters and entry count of the im2col index cache."""
    return dict(_IM2COL_CACHE_STATS, entries=len(_IM2COL_INDEX_CACHE))


def clear_im2col_cache() -> None:
    """Drop memoised im2col indices and reset the hit/miss counters."""
    _IM2COL_INDEX_CACHE.clear()
    _IM2COL_CACHE_STATS["hits"] = 0
    _IM2COL_CACHE_STATS["misses"] = 0


def _im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    out: np.ndarray = None,
) -> np.ndarray:
    """Gather kernel windows of an already-padded NCHW array.

    Small column tensors take a single fancy gather driven by memoised
    indices; large ones take the strided slice loop (see
    ``_IM2COL_GATHER_MAX_ELEMENTS``).  Both produce bitwise-identical
    columns — the choice is purely a speed heuristic.  ``out``, when
    given, must be a contiguous ``(N, C, KH, KW, OH, OW)`` buffer and is
    filled in place (used by the graph executor's arena).
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype) if out is None else out
    if cols.size <= _IM2COL_GATHER_MAX_ELEMENTS and x.flags.c_contiguous:
        index = _im2col_indices(h, w, kernel, stride)
        np.take(x.reshape(n, c, h * w), index, axis=2, out=cols)
    else:
        for i in range(kh):
            for j in range(kw):
                cols[:, :, i, j] = x[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw]
    return cols


def _col2im(
    cols: np.ndarray,
    padded_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
) -> np.ndarray:
    """Scatter-add kernel windows back into a padded NCHW array."""
    kh, kw = kernel
    sh, sw = stride
    oh, ow = cols.shape[-2:]
    out = np.zeros(padded_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += cols[:, :, i, j]
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D cross-correlation of NCHW input with an FCKK weight tensor."""
    x = as_tensor(x)
    weight = as_tensor(weight)
    stride = _pair(stride)
    padding = _pair(padding)
    kh, kw = weight.shape[2], weight.shape[3]
    ph, pw = padding

    x_pad = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x.data
    cols = _im2col(x_pad, (kh, kw), stride)
    # (N, C, KH, KW, OH, OW) x (F, C, KH, KW) -> (N, OH, OW, F)
    value = np.tensordot(cols, weight.data, axes=([1, 2, 3], [1, 2, 3]))
    value = value.transpose(0, 3, 1, 2)
    if bias is not None:
        value = value + bias.data.reshape(1, -1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = x._make_child(value, parents)
    if out.requires_grad:
        padded_shape = x_pad.shape
        in_h, in_w = x.shape[2], x.shape[3]

        def backward(grad: np.ndarray) -> None:
            if weight.requires_grad:
                # (N, F, OH, OW) x (N, C, KH, KW, OH, OW) over N, OH, OW
                grad_w = np.tensordot(grad, cols, axes=([0, 2, 3], [0, 4, 5]))
                weight._accumulate(grad_w)
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)))
            if x.requires_grad:
                # (N, F, OH, OW) x (F, C, KH, KW) -> (N, OH, OW, C, KH, KW)
                grad_cols = np.tensordot(grad, weight.data, axes=([1], [0]))
                grad_cols = grad_cols.transpose(0, 3, 4, 5, 1, 2)
                grad_pad = _col2im(grad_cols, padded_shape, (kh, kw), stride)
                grad_x = grad_pad[:, :, ph : ph + in_h, pw : pw + in_w]
                x._accumulate(grad_x)

        out._backward = backward
    return out


def max_pool2d(x: Tensor, kernel: IntPair, stride: IntPair = None) -> Tensor:
    """Max pooling over NCHW input."""
    x = as_tensor(x)
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    cols = _im2col(x.data, kernel, stride)
    n, c, kh, kw, oh, ow = cols.shape
    flat = cols.reshape(n, c, kh * kw, oh, ow)
    argmax = flat.argmax(axis=2)
    value = np.take_along_axis(flat, argmax[:, :, None], axis=2).squeeze(2)

    out = x._make_child(value, (x,))
    if out.requires_grad:
        in_shape = x.shape

        def backward(grad: np.ndarray) -> None:
            grad_flat = np.zeros_like(flat)
            np.put_along_axis(grad_flat, argmax[:, :, None], grad[:, :, None], axis=2)
            grad_cols = grad_flat.reshape(n, c, kh, kw, oh, ow)
            x._accumulate(_col2im(grad_cols, in_shape, kernel, stride))

        out._backward = backward
    return out


def avg_pool2d(x: Tensor, kernel: IntPair, stride: IntPair = None) -> Tensor:
    """Average pooling over NCHW input."""
    x = as_tensor(x)
    kernel = _pair(kernel)
    stride = kernel if stride is None else _pair(stride)
    cols = _im2col(x.data, kernel, stride)
    value = cols.mean(axis=(2, 3))

    out = x._make_child(value, (x,))
    if out.requires_grad:
        in_shape = x.shape
        kh, kw = kernel
        scale = 1.0 / (kh * kw)

        def backward(grad: np.ndarray) -> None:
            n, c, oh, ow = grad.shape
            grad_cols = np.broadcast_to(
                grad[:, :, None, None] * scale, (n, c, kh, kw, oh, ow)
            ).copy()
            x._accumulate(_col2im(grad_cols, in_shape, kernel, stride))

        out._backward = backward
    return out


def pad2d(x: Tensor, padding: IntPair) -> Tensor:
    """Zero-pad the spatial dimensions of an NCHW tensor."""
    x = as_tensor(x)
    ph, pw = _pair(padding)
    value = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out = x._make_child(value, (x,))
    if out.requires_grad:
        h, w = x.shape[2], x.shape[3]

        def backward(grad: np.ndarray) -> None:
            x._accumulate(grad[:, :, ph : ph + h, pw : pw + w])

        out._backward = backward
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    value = exp / exp.sum(axis=axis, keepdims=True)

    out = x._make_child(value, (x,))
    if out.requires_grad:

        def backward(grad: np.ndarray) -> None:
            inner = (grad * value).sum(axis=axis, keepdims=True)
            x._accumulate(value * (grad - inner))

        out._backward = backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    value = shifted - log_sum

    out = x._make_child(value, (x,))
    if out.requires_grad:
        probs = np.exp(value)

        def backward(grad: np.ndarray) -> None:
            x._accumulate(grad - probs * grad.sum(axis=axis, keepdims=True))

        out._backward = backward
    return out


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of an embedding matrix; gradients scatter-add back."""
    weight = as_tensor(weight)
    indices = np.asarray(indices, dtype=np.int64)
    value = weight.data[indices]

    out = weight._make_child(value, (weight,))
    if out.requires_grad:

        def backward(grad: np.ndarray) -> None:
            grad_w = np.zeros_like(weight.data)
            np.add.at(grad_w, indices, grad)
            weight._accumulate(grad_w)

        out._backward = backward
    return out
