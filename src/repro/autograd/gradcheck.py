"""Finite-difference gradient checking for the autograd engine.

Used extensively by the test suite to validate every primitive operation
and every layer against numerical derivatives.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def gradient_check(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    epsilon: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
) -> bool:
    """Compare analytic gradients of ``func`` against central differences.

    ``func`` must map the given input tensors to a tensor whose elements
    are summed to form the scalar objective.  Raises ``AssertionError``
    with a diagnostic message on mismatch; returns ``True`` otherwise.
    """
    for tensor in inputs:
        tensor.zero_grad()

    output = func(*inputs)
    objective = output.sum() if output.size > 1 else output
    objective.backward()

    for idx, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        if analytic is None:
            raise AssertionError(f"input {idx} received no gradient")
        numeric = np.zeros_like(tensor.data, dtype=np.float64)
        flat = tensor.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + epsilon
            plus = float(func(*inputs).sum().data)
            flat[i] = original - epsilon
            minus = float(func(*inputs).sum().data)
            flat[i] = original
            numeric_flat[i] = (plus - minus) / (2.0 * epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {idx}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
