"""Op-level profiler and trace spans over :mod:`repro.autograd`.

Design goals, in order:

1. **Zero overhead when off.**  Nothing in the hot path is permanently
   wrapped.  While a :class:`Profiler` with ``ops=True`` is active, the
   primitive tensor operations (``matmul``, ``conv2d``, ``softmax``,
   elementwise ops, reductions, …) are *temporarily* replaced by timing
   wrappers — on :class:`Tensor` itself for methods, and on every module
   that holds a ``from repro.autograd import conv2d``-style binding
   (found by scanning ``sys.modules`` for attributes that *are* the
   original function).  On exit every binding is restored, so the
   profiling-off code path is byte-identical to an uninstrumented build.
   Inactive :func:`trace_span` blocks cost one global list check.

2. **Forward/backward attribution.**  Each wrapped op also wraps the
   backward closure it records on its output tensor, so the reverse pass
   is timed per-op and reported separately.

3. **Structure via spans.**  ``with trace_span("rel2att.block0"):``
   annotates model-level structure.  Spans broadcast to every active
   collector, so a full :class:`Profiler` and a lightweight
   :class:`SpanTotals` (used by ``repro.eval.timing``) can listen at
   the same time, nested or not.

Composite ops (``mean``, ``sub``, ``var``, ``stack``) suppress the
recording of the primitives they are built from (a thread-local
re-entrancy guard), so each forward numpy FLOP is attributed exactly
once.  Backward time of a composite is attributed to its outermost
closure; interior closures created while the guard was held run
untimed, which slightly under-reports composite backward time — an
accepted approximation documented in DESIGN.md.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import repro.autograd.functional
import repro.autograd.tensor
from repro.autograd.tensor import Tensor

# The package __init__ re-exports a ``tensor`` *function* that shadows
# the submodule attribute, so ``import repro.autograd.tensor as m``
# would bind the function; go through sys.modules for the modules.
_functional = sys.modules["repro.autograd.functional"]
_tensor_mod = sys.modules["repro.autograd.tensor"]

# ----------------------------------------------------------------------
# Span broadcasting
# ----------------------------------------------------------------------
#: Active span collectors.  Appended/removed under _collectors_lock;
#: read without locking (CPython list reads are atomic) on the hot path.
_collectors: List[object] = []
_collectors_lock = threading.Lock()


def _add_collector(collector: object) -> None:
    with _collectors_lock:
        _collectors.append(collector)


def _remove_collector(collector: object) -> None:
    with _collectors_lock:
        if collector in _collectors:
            _collectors.remove(collector)


class trace_span:
    """Annotate a code region; near-free when no profiler is listening.

    ``with trace_span("yollo.forward"): ...`` records one span event
    (name, start, end) into every active collector.  When nothing is
    collecting, entry and exit are a single truthiness check each.
    """

    __slots__ = ("name", "_start")

    def __init__(self, name: str):
        self.name = name
        self._start = None

    def __enter__(self) -> "trace_span":
        if _collectors:
            self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._start is not None:
            end = time.perf_counter()
            for collector in list(_collectors):
                collector.record_span(self.name, self._start, end)
            self._start = None
        return False


class SpanTotals:
    """Minimal span collector: accumulated seconds and calls per name."""

    def __init__(self):
        self.totals: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def record_span(self, name: str, start: float, end: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + (end - start)
        self.calls[name] = self.calls.get(name, 0) + 1

    def total(self, names) -> float:
        """Summed seconds across the given span names."""
        return sum(self.totals.get(name, 0.0) for name in names)


@contextmanager
def collect_spans(collector: Optional[SpanTotals] = None):
    """Register a span collector for the duration of the block."""
    collector = collector if collector is not None else SpanTotals()
    _add_collector(collector)
    try:
        yield collector
    finally:
        _remove_collector(collector)


# ----------------------------------------------------------------------
# Primitive op tables
# ----------------------------------------------------------------------
#: Tensor methods wrapped while profiling (attribute name -> op label).
_TENSOR_METHODS: Dict[str, str] = {
    "__add__": "add",
    "__sub__": "sub",
    "__neg__": "neg",
    "__mul__": "mul",
    "__truediv__": "div",
    "__pow__": "pow",
    "__getitem__": "index",
    "matmul": "matmul",
    "exp": "exp",
    "log": "log",
    "tanh": "tanh",
    "sigmoid": "sigmoid",
    "relu": "relu",
    "leaky_relu": "leaky_relu",
    "abs": "abs",
    "clip": "clip",
    "maximum": "maximum",
    "sum": "sum",
    "mean": "mean",
    "max": "max",
    "var": "var",
    "reshape": "reshape",
    "transpose": "transpose",
}

#: Free functions wrapped while profiling: op label -> defining module.
_FUNCTION_OPS: Dict[str, object] = {
    "conv2d": _functional,
    "max_pool2d": _functional,
    "avg_pool2d": _functional,
    "pad2d": _functional,
    "softmax": _functional,
    "log_softmax": _functional,
    "embedding_lookup": _functional,
    "where": _tensor_mod,
    "concatenate": _tensor_mod,
    "stack": _tensor_mod,
}

# Thread-local re-entrancy guard: ops called from inside another
# instrumented op are attributed to the outer op.
_tls = threading.local()

#: The single profiler currently patching ops (spans may have several
#: collectors, but op wrappers close over exactly one profiler).
_op_profiler: Optional["Profiler"] = None


@dataclass
class TraceEvent:
    """One completed op or span occurrence."""

    name: str
    category: str  # "op" | "span"
    phase: str  # "forward" | "backward" | "" (spans)
    start: float  # absolute time.perf_counter() seconds
    duration: float
    thread: int
    shape: Optional[Tuple[int, ...]] = None
    nbytes: int = 0


@dataclass
class OpStat:
    """Aggregated per-op totals over one profiling session."""

    name: str
    calls: int = 0
    backward_calls: int = 0
    forward_seconds: float = 0.0
    backward_seconds: float = 0.0
    nbytes: int = 0

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds


class Profiler:
    """Record primitive-op timings and spans for one code region.

    Use through the :func:`profile` context manager::

        with profile() as prof:
            loss = trainer.forward_backward()
            trainer.apply_step(loss)
        print(prof.render(top=10))
        prof.export_chrome_trace("trace.json")

    Parameters
    ----------
    ops:
        Patch the autograd primitives (op-level events).  Only one
        ops-profiler may be active at a time.  ``ops=False`` collects
        spans only — cheap enough to wrap timing loops.
    """

    def __init__(self, ops: bool = True):
        self.ops = ops
        self.events: List[TraceEvent] = []
        self._events_lock = threading.Lock()
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None
        self._patched_modules: List[Tuple[object, str, object]] = []
        self._patched_methods: List[Tuple[str, object]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Profiler":
        global _op_profiler
        if self._t0 is not None:
            raise RuntimeError("Profiler instances are single-use")
        if self.ops:
            if _op_profiler is not None:
                raise RuntimeError("another op-level Profiler is already active")
            _op_profiler = self
            self._install_patches()
        self._t0 = time.perf_counter()
        _add_collector(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _op_profiler
        self._t1 = time.perf_counter()
        _remove_collector(self)
        if self.ops:
            self._uninstall_patches()
            _op_profiler = None
        return False

    @property
    def wall_seconds(self) -> float:
        if self._t0 is None:
            return 0.0
        end = self._t1 if self._t1 is not None else time.perf_counter()
        return end - self._t0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_span(self, name: str, start: float, end: float) -> None:
        event = TraceEvent(
            name=name, category="span", phase="",
            start=start, duration=end - start,
            thread=threading.get_ident(),
        )
        with self._events_lock:
            self.events.append(event)

    def record_op(self, name: str, start: float, duration: float,
                  shape: Optional[Tuple[int, ...]] = None, nbytes: int = 0,
                  phase: str = "forward") -> None:
        """Record an op event from outside the patching machinery.

        Used by the graph executor to attribute compiled-plan kernels
        (including fused labels like ``conv2d+bn+relu``), which run as
        raw numpy and never pass through the patched autograd bindings.
        """
        event = TraceEvent(
            name=name, category="op", phase=phase,
            start=start, duration=duration,
            thread=threading.get_ident(), shape=shape, nbytes=nbytes,
        )
        with self._events_lock:
            self.events.append(event)

    def _record_op(self, name: str, start: float, duration: float,
                   out, phase: str) -> None:
        shape = None
        nbytes = 0
        if isinstance(out, Tensor):
            shape = tuple(out.data.shape)
            nbytes = int(out.data.nbytes)
        event = TraceEvent(
            name=name, category="op", phase=phase,
            start=start, duration=duration,
            thread=threading.get_ident(), shape=shape, nbytes=nbytes,
        )
        with self._events_lock:
            self.events.append(event)

    # ------------------------------------------------------------------
    # Patching machinery
    # ------------------------------------------------------------------
    def _make_op_wrapper(self, label: str, fn: Callable) -> Callable:
        profiler = self

        def wrapped(*args, **kwargs):
            if getattr(_tls, "busy", False):
                return fn(*args, **kwargs)
            _tls.busy = True
            started = time.perf_counter()
            try:
                out = fn(*args, **kwargs)
            finally:
                _tls.busy = False
            profiler._record_op(
                label, started, time.perf_counter() - started, out, "forward"
            )
            if isinstance(out, Tensor) and out._backward is not None:
                profiler._hook_backward(label, out)
            return out

        wrapped.__name__ = getattr(fn, "__name__", label)
        wrapped.__qualname__ = getattr(fn, "__qualname__", label)
        wrapped.__doc__ = getattr(fn, "__doc__", None)
        wrapped._obs_original = fn
        return wrapped

    def _hook_backward(self, label: str, out: Tensor) -> None:
        inner = out._backward
        profiler = self

        def timed_backward(grad):
            if getattr(_tls, "busy", False):
                return inner(grad)
            _tls.busy = True
            started = time.perf_counter()
            try:
                inner(grad)
            finally:
                _tls.busy = False
            profiler._record_op(
                label, started, time.perf_counter() - started, None, "backward"
            )

        out._backward = timed_backward

    def _install_patches(self) -> None:
        # Tensor methods: one patch on the class covers every call site.
        for attr, label in _TENSOR_METHODS.items():
            original = getattr(Tensor, attr)
            setattr(Tensor, attr, self._make_op_wrapper(label, original))
            self._patched_methods.append((attr, original))

        # Free functions: patch the defining module *and* every module
        # holding a direct binding (``from repro.autograd import conv2d``
        # freezes the function object into the importer's namespace, so
        # patching only the source module would miss those call sites).
        originals = {
            label: getattr(module, label)
            for label, module in _FUNCTION_OPS.items()
        }
        wrappers = {
            label: self._make_op_wrapper(label, fn)
            for label, fn in originals.items()
        }
        for module in list(sys.modules.values()):
            if module is None or not getattr(module, "__name__", "").startswith("repro"):
                continue
            for label, fn in originals.items():
                if getattr(module, label, None) is fn:
                    setattr(module, label, wrappers[label])
                    self._patched_modules.append((module, label, fn))

    def _uninstall_patches(self) -> None:
        for attr, original in self._patched_methods:
            setattr(Tensor, attr, original)
        self._patched_methods = []
        for module, label, original in self._patched_modules:
            setattr(module, label, original)
        self._patched_modules = []

    # ------------------------------------------------------------------
    # Aggregation and export
    # ------------------------------------------------------------------
    def snapshot_events(self) -> List[TraceEvent]:
        with self._events_lock:
            return list(self.events)

    def op_stats(self) -> List[OpStat]:
        """Per-op totals sorted by total time, descending."""
        stats: Dict[str, OpStat] = {}
        for event in self.snapshot_events():
            if event.category != "op":
                continue
            stat = stats.get(event.name)
            if stat is None:
                stat = stats[event.name] = OpStat(name=event.name)
            if event.phase == "backward":
                stat.backward_calls += 1
                stat.backward_seconds += event.duration
            else:
                stat.calls += 1
                stat.forward_seconds += event.duration
                stat.nbytes += event.nbytes
        return sorted(stats.values(), key=lambda s: -s.total_seconds)

    def span_totals(self) -> Dict[str, float]:
        """Accumulated seconds per span name."""
        totals: Dict[str, float] = {}
        for event in self.snapshot_events():
            if event.category == "span":
                totals[event.name] = totals.get(event.name, 0.0) + event.duration
        return totals

    def span_stats(self) -> List[Tuple[str, int, float]]:
        """(name, calls, total seconds) per span, sorted by total time."""
        totals: Dict[str, List[float]] = {}
        for event in self.snapshot_events():
            if event.category == "span":
                entry = totals.setdefault(event.name, [0, 0.0])
                entry[0] += 1
                entry[1] += event.duration
        return sorted(
            ((name, int(calls), total) for name, (calls, total) in totals.items()),
            key=lambda row: -row[2],
        )

    def chrome_trace(self) -> List[Dict[str, object]]:
        """Chrome ``trace_event`` complete events, sorted by timestamp.

        Load the exported JSON in ``chrome://tracing`` or Perfetto.
        Timestamps are microseconds relative to profiler start.
        """
        t0 = self._t0 if self._t0 is not None else 0.0
        trace: List[Dict[str, object]] = []
        for event in sorted(self.snapshot_events(), key=lambda e: e.start):
            args: Dict[str, object] = {}
            if event.phase:
                args["phase"] = event.phase
            if event.shape is not None:
                args["shape"] = list(event.shape)
                args["bytes"] = event.nbytes
            trace.append({
                "name": event.name,
                "cat": event.category,
                "ph": "X",
                "ts": (event.start - t0) * 1e6,
                "dur": event.duration * 1e6,
                "pid": 0,
                "tid": event.thread,
                "args": args,
            })
        return trace

    def export_chrome_trace(self, path: str) -> str:
        """Write the Chrome trace JSON; returns the path."""
        payload = {
            "traceEvents": self.chrome_trace(),
            "displayTimeUnit": "ms",
            "metadata": {
                "producer": "repro.obs",
                "wall_seconds": self.wall_seconds,
            },
        }
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return path

    def render(self, top: int = 10) -> str:
        """Human-readable report: hot-op table plus span table."""
        from repro.obs.report import render_profile

        return render_profile(self, top=top)


@contextmanager
def profile(ops: bool = True):
    """Profile the enclosed block; yields the :class:`Profiler`."""
    profiler = Profiler(ops=ops)
    with profiler:
        yield profiler


def get_active_profiler() -> Optional[Profiler]:
    """The op-level profiler currently patching autograd, if any."""
    return _op_profiler
