"""Unified metrics primitives: counters, gauges, histograms, registry.

Every latency/quantile number in the repo flows through this module so
serving telemetry, the Table-5 timing path, and the profiler all share
one quantile implementation (:func:`percentiles`, linear interpolation,
matching ``np.percentile``'s default).  A :class:`MetricsRegistry` is a
thread-safe name -> metric namespace; subsystems either publish into the
process-wide registry (:func:`get_registry`) or into a private one
(e.g. each :class:`repro.serve.ServeEngine` owns its own).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Quantiles reported by every summary in the repo.
SUMMARY_QUANTILES = (50.0, 95.0, 99.0)


def percentiles(values: Sequence[float], qs: Sequence[float]) -> Tuple[float, ...]:
    """The repo's single quantile implementation.

    Linear interpolation between order statistics (``np.percentile``
    default).  An empty sample yields zeros, matching the previous
    behaviour of ``repro.serve.stats`` on an idle engine.
    """
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return tuple(0.0 for _ in qs)
    return tuple(float(v) for v in np.percentile(values, list(qs)))


@dataclass(frozen=True)
class HistogramSummary:
    """Immutable condensation of one histogram's samples."""

    count: int
    total: float
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


_EMPTY_SUMMARY = HistogramSummary(
    count=0, total=0.0, mean=0.0, std=0.0,
    minimum=0.0, maximum=0.0, p50=0.0, p95=0.0, p99=0.0,
)


class Counter:
    """Monotonically increasing integer metric."""

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> int:
        with self._lock:
            self._value += int(amount)
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """Last-write-wins float metric."""

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Sample-keeping distribution metric with quantile summaries.

    Samples are retained exactly (runs in this repo are small enough),
    so :meth:`percentile` agrees bit-for-bit with ``np.percentile`` over
    the recorded values — the semantics previously private to
    ``repro.serve.stats`` and now shared by every subsystem.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.Lock()
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        with self._lock:
            self._values.extend(float(v) for v in values)

    def merge(self, other: Union["Histogram", Iterable[float]]) -> None:
        """Fold another histogram's raw samples into this one.

        Merging concatenates samples, so it is associative and — for
        every quantile — commutative: ``np.percentile`` sorts, making
        the p50/p95/p99 of a merged histogram independent of merge
        order.  ``total``/``mean``/``std`` are floating-point sums over
        the sample list and may differ across merge orders by normal
        summation-reordering error (~1e-12 relative), which is the
        documented tolerance for comparing aggregated per-rank metrics
        against a single-process run.
        """
        values = other.values() if isinstance(other, Histogram) else other
        self.observe_many(values)

    def values(self) -> List[float]:
        """Copy of the raw samples (thread-safe snapshot)."""
        with self._lock:
            return list(self._values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    def percentile(self, q: Union[float, Sequence[float]]):
        if isinstance(q, (int, float)):
            return percentiles(self.values(), [float(q)])[0]
        return percentiles(self.values(), [float(v) for v in q])

    def summary(self) -> HistogramSummary:
        values = self.values()
        if not values:
            return _EMPTY_SUMMARY
        array = np.asarray(values, dtype=np.float64)
        p50, p95, p99 = percentiles(array, SUMMARY_QUANTILES)
        return HistogramSummary(
            count=int(array.size),
            total=float(array.sum()),
            mean=float(array.mean()),
            std=float(array.std()),
            minimum=float(array.min()),
            maximum=float(array.max()),
            p50=p50, p95=p95, p99=p99,
        )

    def reset(self) -> None:
        with self._lock:
            self._values = []


class MetricsRegistry:
    """Thread-safe name -> metric namespace with get-or-create semantics."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    @contextmanager
    def timer(self, name: str):
        """Observe the wall time of a ``with`` block into a histogram."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - started)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, object]:
        """Plain-container snapshot: ints, floats, and summary dicts."""
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, object] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.summary().as_dict()
            else:
                out[name] = metric.value
        return out

    def render(self) -> str:
        """Multi-line human-readable dump of every metric."""
        lines: List[str] = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                lines.append(
                    f"{name}  n={value['count']} mean={value['mean']:.6f} "
                    f"p50={value['p50']:.6f} p95={value['p95']:.6f} "
                    f"p99={value['p99']:.6f}"
                )
            else:
                lines.append(f"{name}  {value}")
        return "\n".join(lines)

    def dump(self) -> Dict[str, Dict[str, object]]:
        """Plain-container export of every metric's raw state.

        Unlike :meth:`snapshot` (which condenses histograms into
        summaries), a dump keeps raw histogram samples so dumps from
        several processes can be merged losslessly — the transport
        format for shipping per-rank worker metrics back to rank 0.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            elif isinstance(metric, Histogram):
                out["histograms"][name] = metric.values()
        return out

    def merge(self, dump: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`dump` into this registry.

        Counters add, gauges last-write-wins, histograms concatenate
        raw samples (associative; see :meth:`Histogram.merge` for the
        exact/tolerance contract on summaries).
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, values in dump.get("histograms", {}).items():
            self.histogram(name).merge(values)

    def reset(self) -> None:
        """Reset every metric in place (handles held by callers stay valid)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def remove(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)


#: Process-wide registry: trainers and the runtime supervisor publish
#: here by default so one snapshot covers a whole run.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """Return the process-wide metrics registry."""
    return _GLOBAL_REGISTRY
