"""Observability subsystem: op-level profiler, trace spans, metrics.

Three layers, designed to be adopted piecemeal:

- :mod:`repro.obs.metrics` — counters, gauges, histograms (p50/p95/p99)
  and a thread-safe :class:`MetricsRegistry`; the single quantile
  implementation shared by serving stats, eval timing, and benchmarks.
- :mod:`repro.obs.profiler` — zero-overhead-when-off op profiler over
  ``repro.autograd`` (forward/backward attribution, shapes, bytes) plus
  :func:`trace_span` structural annotations.
- :mod:`repro.obs.report` — ASCII hot-op/span tables; Chrome
  ``trace_event`` export lives on :class:`Profiler` itself.

Quickstart::

    from repro.obs import profile, trace_span

    with profile() as prof:
        model.forward(images, token_ids, token_mask)
    print(prof.render(top=10))
    prof.export_chrome_trace("trace.json")  # open in chrome://tracing
"""

from repro.obs.metrics import (
    SUMMARY_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    get_registry,
    percentiles,
)
from repro.obs.profiler import (
    OpStat,
    Profiler,
    SpanTotals,
    TraceEvent,
    collect_spans,
    get_active_profiler,
    profile,
    trace_span,
)
from repro.obs.report import render_hot_ops, render_profile, render_spans

__all__ = [
    "SUMMARY_QUANTILES",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "get_registry",
    "percentiles",
    "OpStat",
    "Profiler",
    "SpanTotals",
    "TraceEvent",
    "collect_spans",
    "get_active_profiler",
    "profile",
    "trace_span",
    "render_hot_ops",
    "render_profile",
    "render_spans",
]
