"""Human-readable rendering of profiler sessions.

Kept separate from :mod:`repro.obs.profiler` so the profiler core has no
import-time dependency on the table/viz helpers (``repro.eval.reporting``
imports ``repro.eval.timing`` which imports ``repro.obs`` — rendering
imports lazily to keep that chain acyclic).
"""

from __future__ import annotations

from typing import List


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def _format_mb(nbytes: int) -> str:
    return f"{nbytes / (1024.0 * 1024.0):.2f}"


def render_hot_ops(profiler, top: int = 10) -> str:
    """Top-K hot-op ASCII table for one profiling session.

    Columns: op name, forward call count, total/forward/backward
    milliseconds, share of summed op time, cumulative forward output
    megabytes, and a proportional ASCII bar.
    """
    from repro.eval.reporting import format_table
    from repro.viz.ascii import ascii_bar

    stats = profiler.op_stats()
    summed = sum(stat.total_seconds for stat in stats) or 1.0
    rows: List[List[str]] = []
    for stat in stats[: max(0, int(top))]:
        share = stat.total_seconds / summed
        rows.append([
            stat.name,
            str(stat.calls),
            _format_ms(stat.total_seconds),
            _format_ms(stat.forward_seconds),
            _format_ms(stat.backward_seconds),
            f"{share * 100.0:5.1f}%",
            _format_mb(stat.nbytes),
            ascii_bar(share, width=20),
        ])
    if not rows:
        return "no op events recorded (was the profiler enabled with ops=True?)"
    return format_table(
        ["Op", "Calls", "Total ms", "Fwd ms", "Bwd ms", "Share", "MB", ""],
        rows,
        title=f"Hot ops (top {min(top, len(stats))} of {len(stats)})",
    )


def render_spans(profiler) -> str:
    """Span summary table (name, calls, total ms, mean ms)."""
    from repro.eval.reporting import format_table

    stats = profiler.span_stats()
    if not stats:
        return "no spans recorded"
    rows = [
        [name, str(calls), _format_ms(total), _format_ms(total / max(calls, 1))]
        for name, calls, total in stats
    ]
    return format_table(
        ["Span", "Calls", "Total ms", "Mean ms"],
        rows,
        title="Spans",
    )


def render_profile(profiler, top: int = 10) -> str:
    """Full report: header, hot-op table, span table."""
    events = profiler.snapshot_events()
    num_ops = sum(1 for e in events if e.category == "op")
    num_spans = len(events) - num_ops
    header = (
        f"profile: wall {profiler.wall_seconds * 1e3:.1f} ms, "
        f"{num_ops} op events, {num_spans} span events"
    )
    parts = [header, "", render_hot_ops(profiler, top=top)]
    if num_spans:
        parts += ["", render_spans(profiler)]
    return "\n".join(parts)
