"""Retry with exponential backoff and graceful degradation.

Flaky auxiliary stages (checkpoint IO, periodic evaluation) must never
kill a training run: transient failures are retried with jittered
exponential backoff, and persistent failures of *optional* stages are
logged and swallowed via :func:`graceful`.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional, Tuple, Type

from repro.utils.seeding import spawn_rng


class RetryExhaustedError(RuntimeError):
    """All retry attempts failed; the last exception is chained as cause."""


def backoff_delay(
    attempt: int,
    *,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    jitter: float = 0.5,
    rng=None,
) -> float:
    """Jittered exponential backoff for 1-based ``attempt``.

    The deterministic part is ``base_delay * 2**(attempt-1)`` capped at
    ``max_delay``; the result is then multiplied by a random factor in
    ``[1, 1+jitter]`` drawn from ``rng`` so that parallel clients
    retrying a shared resource de-synchronise.  This is the single
    backoff schedule shared by :func:`retry_call` and the serving
    fleet's deadline-retry and respawn paths.
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based and must be at least 1")
    rng = rng if rng is not None else spawn_rng("retry-backoff")
    delay = min(max_delay, base_delay * (2.0 ** (attempt - 1)))
    return delay * (1.0 + jitter * float(rng.random()))


def retry_call(
    fn: Callable[[], Any],
    *,
    attempts: int = 3,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    jitter: float = 0.5,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    describe: str = "operation",
    sleep: Callable[[float], None] = time.sleep,
    rng=None,
    logger=None,
) -> Any:
    """Call ``fn`` up to ``attempts`` times with exponential backoff.

    The backoff for attempt *k* is ``base_delay * 2**(k-1)`` capped at
    ``max_delay``, multiplied by a random factor in ``[1, 1+jitter]``
    so that parallel workers retrying a shared resource de-synchronise.
    ``sleep`` and ``rng`` are injectable for deterministic tests.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    rng = rng if rng is not None else spawn_rng("retry-backoff")
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt == attempts:
                raise RetryExhaustedError(
                    f"{describe} failed after {attempts} attempt(s): {exc!r}"
                ) from exc
            delay = backoff_delay(attempt, base_delay=base_delay,
                                  max_delay=max_delay, jitter=jitter, rng=rng)
            if logger is not None:
                logger.log(
                    f"{describe} failed (attempt {attempt}/{attempts}): "
                    f"{exc!r}; retrying in {delay:.2f}s"
                )
            sleep(delay)


def with_retry(**retry_kwargs) -> Callable:
    """Decorator form of :func:`retry_call`."""

    def decorate(fn: Callable) -> Callable:
        kwargs_for_call = dict(retry_kwargs)
        kwargs_for_call.setdefault("describe", fn.__name__)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return retry_call(lambda: fn(*args, **kwargs), **kwargs_for_call)

        return wrapper

    return decorate


def graceful(
    fn: Callable[[], Any],
    *,
    default: Any = None,
    swallow: Tuple[Type[BaseException], ...] = (Exception,),
    describe: str = "stage",
    logger=None,
) -> Tuple[bool, Any]:
    """Run an optional stage; failures degrade to ``(False, default)``.

    Used for stages whose failure must never terminate training (e.g. a
    periodic evaluation): the exception is logged and swallowed.
    """
    try:
        return True, fn()
    except swallow as exc:
        if logger is not None:
            logger.log(f"{describe} failed, continuing without it: {exc!r}")
        return False, default
