"""Anomaly detection for training steps: NaN/Inf losses and gradients.

The guard sits between backward and the optimiser update.  A single
anomalous step (non-finite loss, non-finite gradient, or a loss spike
far above the recent median) is *skipped* — gradients are discarded and
training continues on the next batch.  Repeated consecutive anomalies
indicate corrupted optimiser or model state, and the guard escalates to
a *rollback* to the last good checkpoint.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np


class GuardAction(enum.Enum):
    PROCEED = "proceed"
    SKIP = "skip"
    ROLLBACK = "rollback"


@dataclass
class GuardVerdict:
    """Outcome of one anomaly check."""

    action: GuardAction
    reason: str = ""

    def __bool__(self) -> bool:
        return self.action is GuardAction.PROCEED


def nonfinite_gradients(parameters: Iterable) -> List[int]:
    """Indices of parameters whose gradient contains NaN or Inf."""
    bad = []
    for index, param in enumerate(parameters):
        grad = getattr(param, "grad", None)
        if grad is not None and not np.isfinite(grad).all():
            bad.append(index)
    return bad


class AnomalyGuard:
    """Classify each training step as proceed / skip / rollback.

    Parameters
    ----------
    max_consecutive:
        Number of consecutive anomalous steps tolerated (each skipped)
        before escalating to a rollback.
    spike_factor / spike_window:
        A finite loss greater than ``spike_factor`` times the median of
        the last ``spike_window`` healthy losses counts as an anomaly.
        Spike detection only arms once the window is full, so early
        training volatility is never punished.
    """

    def __init__(self, max_consecutive: int = 3, spike_factor: float = 25.0,
                 spike_window: int = 25, logger=None):
        if max_consecutive < 1:
            raise ValueError("max_consecutive must be at least 1")
        self.max_consecutive = max_consecutive
        self.spike_factor = spike_factor
        self.spike_window = spike_window
        self.logger = logger
        self.consecutive = 0
        self.anomaly_count = 0
        self._recent: deque = deque(maxlen=spike_window)

    # ------------------------------------------------------------------
    def _find_anomaly(self, loss: float, parameters: Iterable) -> Optional[str]:
        if not math.isfinite(loss):
            return f"non-finite loss ({loss})"
        bad = nonfinite_gradients(parameters)
        if bad:
            return f"non-finite gradients in {len(bad)} parameter(s)"
        if (self.spike_factor and len(self._recent) == self.spike_window):
            median = float(np.median(list(self._recent)))
            if median > 0.0 and loss > self.spike_factor * median:
                return (f"loss spike ({loss:.3g} > {self.spike_factor:g}x "
                        f"median {median:.3g})")
        return None

    def assess(self, loss: float, parameters: Iterable = ()) -> GuardVerdict:
        """Check one step; healthy losses feed the spike-detection window."""
        reason = self._find_anomaly(float(loss), parameters)
        if reason is None:
            self.consecutive = 0
            self._recent.append(float(loss))
            return GuardVerdict(GuardAction.PROCEED)
        self.consecutive += 1
        self.anomaly_count += 1
        if self.logger is not None:
            self.logger.log(f"anomaly #{self.consecutive}: {reason}")
        if self.consecutive >= self.max_consecutive:
            return GuardVerdict(GuardAction.ROLLBACK, reason)
        return GuardVerdict(GuardAction.SKIP, reason)

    def reset(self) -> None:
        """Forget streak and loss window (call after a rollback)."""
        self.consecutive = 0
        self._recent.clear()
