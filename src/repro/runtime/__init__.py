"""Fault-tolerant training runtime.

Makes every gradient-descent loop in the repo crash-safe and
self-healing: atomic checksummed checkpoints with rotation and
bit-exact resume (:mod:`checkpoint`), NaN/spike anomaly guards with
skip-step and rollback (:mod:`guards`), retry/backoff with graceful
degradation for flaky auxiliary stages (:mod:`retry`), a deterministic
fault-injection harness (:mod:`faults`), and the
:class:`TrainingSupervisor` orchestrating all of it (:mod:`supervisor`).
"""

from repro.runtime.checkpoint import (
    Checkpoint,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    FingerprintMismatchError,
    config_fingerprint,
)
from repro.runtime.guards import (
    AnomalyGuard,
    GuardAction,
    GuardVerdict,
    nonfinite_gradients,
)
from repro.runtime.retry import (
    RetryExhaustedError,
    backoff_delay,
    graceful,
    retry_call,
    with_retry,
)
from repro.runtime.faults import FaultPlan, SimulatedCrash, corrupt_file
from repro.runtime.supervisor import (
    CallbackTask,
    SupervisedTask,
    SupervisorReport,
    TrainingAborted,
    TrainingSupervisor,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointManager",
    "FingerprintMismatchError",
    "config_fingerprint",
    "AnomalyGuard",
    "GuardAction",
    "GuardVerdict",
    "nonfinite_gradients",
    "RetryExhaustedError",
    "backoff_delay",
    "retry_call",
    "with_retry",
    "graceful",
    "FaultPlan",
    "SimulatedCrash",
    "corrupt_file",
    "SupervisedTask",
    "CallbackTask",
    "SupervisorReport",
    "TrainingAborted",
    "TrainingSupervisor",
]
