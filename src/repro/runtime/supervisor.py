"""Crash-safe, self-healing training supervision.

:class:`TrainingSupervisor` drives any :class:`SupervisedTask` (the
YOLLO trainer, the backbone pretrain loop, the two-stage matcher loops)
through a fault-tolerant run loop:

* each step is split into ``forward_backward`` (compute loss and
  gradients) and ``apply_step`` (optimiser update), so an
  :class:`~repro.runtime.guards.AnomalyGuard` can inspect the loss and
  gradients in between and *skip* anomalous steps;
* repeated consecutive anomalies trigger a *rollback* to the last good
  checkpoint (or the run-start snapshot);
* checkpoints are written atomically every ``checkpoint_every``
  iterations with retry/backoff, and a persistently failing write
  degrades gracefully — it never kills the run;
* periodic evaluation failures are retried once and then logged and
  skipped;
* ``resume=True`` restores the newest valid checkpoint and continues
  bit-exactly: model, optimiser moments, RNG streams, batch-order
  state, and history are all part of the checkpoint payload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs import MetricsRegistry, get_registry
from repro.runtime.checkpoint import (
    CheckpointManager,
    FingerprintMismatchError,
    config_fingerprint,
)
from repro.runtime.guards import AnomalyGuard, GuardAction
from repro.runtime.retry import RetryExhaustedError, retry_call
from repro.utils.logging import ProgressLogger


class TrainingAborted(RuntimeError):
    """Raised when recovery is impossible (rollback budget exhausted)."""


class SupervisedTask:
    """Protocol for a training loop the supervisor can drive.

    Subclasses (or duck-typed equivalents) maintain ``iteration``,
    ``total_iterations`` and ``eval_every`` attributes and implement
    the step/state methods below.  ``forward_backward`` may return
    ``None`` to signal a no-op iteration (e.g. a skipped sample in the
    listener's ranking loop); the guard is not consulted for those.
    """

    iteration: int = 0
    total_iterations: int = 0
    eval_every: int = 0

    def parameters(self) -> List:
        raise NotImplementedError

    def forward_backward(self) -> Optional[float]:
        """Compute the next step's loss and gradients; do not update."""
        raise NotImplementedError

    def apply_step(self, loss: float) -> None:
        """Apply the optimiser update and record history."""
        raise NotImplementedError

    def skip_step(self) -> None:
        """Discard the pending gradients and advance the iteration."""
        raise NotImplementedError

    def periodic_eval(self) -> None:
        """Optional mid-run evaluation; may raise (handled gracefully)."""

    def finalize(self) -> None:
        """Optional end-of-run hook (e.g. a trailing evaluation)."""

    def state_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError

    def fingerprint_data(self) -> Dict[str, Any]:
        """Configuration description hashed into the checkpoint fingerprint."""
        return {}

    def result(self) -> Any:
        """Whatever the underlying loop would have returned."""
        return None


@dataclass
class SupervisorReport:
    """Counters describing what one supervised run survived."""

    iterations: int = 0
    resumed_from: Optional[int] = None
    skipped_steps: int = 0
    rollbacks: int = 0
    checkpoint_writes: int = 0
    checkpoint_failures: int = 0
    checkpoint_seconds: float = 0.0
    eval_failures: int = 0
    wall_seconds: float = 0.0
    result: Any = None


class TrainingSupervisor:
    """Wrap a :class:`SupervisedTask` into a resumable, guarded ``run()``."""

    def __init__(
        self,
        task: SupervisedTask,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 0,
        keep: int = 3,
        resume: bool = False,
        guard: Optional[AnomalyGuard] = None,
        fault_plan=None,
        logger: Optional[ProgressLogger] = None,
        max_rollbacks: int = 5,
        io_retry_attempts: int = 3,
        eval_retry_attempts: int = 2,
        retry_sleep: Callable[[float], None] = time.sleep,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.task = task
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.fault_plan = fault_plan
        self.logger = logger or ProgressLogger("supervisor", enabled=False)
        #: Registry receiving ``runtime.*`` metrics (process-wide default);
        #: the :class:`SupervisorReport` counters stay authoritative for a
        #: single run, the registry aggregates across runs.
        self.metrics = metrics if metrics is not None else get_registry()
        self.guard = guard or AnomalyGuard(logger=self.logger)
        self.max_rollbacks = max_rollbacks
        self.io_retry_attempts = io_retry_attempts
        self.eval_retry_attempts = eval_retry_attempts
        self.retry_sleep = retry_sleep
        self.manager: Optional[CheckpointManager] = None
        if checkpoint_dir is not None:
            self.manager = CheckpointManager(
                checkpoint_dir,
                keep=keep,
                fingerprint=config_fingerprint(task.fingerprint_data()),
                fault_plan=fault_plan,
                logger=self.logger,
            )

    # ------------------------------------------------------------------
    def run(self) -> SupervisorReport:
        """Drive the task to ``total_iterations``, surviving faults."""
        task = self.task
        report = SupervisorReport()
        started = time.perf_counter()

        if self.manager is not None and self.resume:
            checkpoint = self.manager.load_latest()
            if checkpoint is not None:
                task.load_state_dict(checkpoint.payload)
                report.resumed_from = checkpoint.iteration
                self.guard.reset()
                self.logger.log(f"resumed from iteration {checkpoint.iteration}")

        # Rollback target of last resort, before any checkpoint exists.
        initial_snapshot = task.state_dict()
        last_saved_iteration = report.resumed_from

        while task.iteration < task.total_iterations:
            upcoming = task.iteration + 1
            if self.fault_plan is not None:
                self.fault_plan.before_step(upcoming)

            loss = task.forward_backward()
            if loss is None:
                task.skip_step()  # no-op iteration (e.g. unusable sample)
                continue
            if self.fault_plan is not None:
                self.fault_plan.mutate_gradients(upcoming, task.parameters())
                loss = self.fault_plan.mutate_loss(upcoming, loss)

            verdict = self.guard.assess(loss, task.parameters())
            if verdict.action is GuardAction.PROCEED:
                task.apply_step(loss)
            elif verdict.action is GuardAction.SKIP:
                self.logger.log(
                    f"skipping iteration {upcoming}: {verdict.reason}"
                )
                task.skip_step()
                report.skipped_steps += 1
                self.metrics.counter("runtime.skipped_steps").inc()
            else:  # ROLLBACK
                self._rollback(report, initial_snapshot, verdict.reason)
                continue

            if task.eval_every and task.iteration % task.eval_every == 0:
                self._guarded_eval(report)
            if (self.manager is not None and self.checkpoint_every
                    and task.iteration % self.checkpoint_every == 0):
                if self._save_checkpoint(report):
                    last_saved_iteration = task.iteration

        task.finalize()
        if (self.manager is not None and self.checkpoint_every
                and last_saved_iteration != task.iteration):
            self._save_checkpoint(report)

        report.iterations = task.iteration
        report.result = task.result()
        report.wall_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _rollback(self, report: SupervisorReport, initial_snapshot: Dict,
                  reason: str) -> None:
        report.rollbacks += 1
        self.metrics.counter("runtime.rollbacks").inc()
        if report.rollbacks > self.max_rollbacks:
            raise TrainingAborted(
                f"aborting after {report.rollbacks - 1} rollbacks "
                f"(last anomaly: {reason})"
            )
        checkpoint = self.manager.load_latest() if self.manager is not None else None
        if checkpoint is not None:
            self.task.load_state_dict(checkpoint.payload)
            target = f"checkpoint at iteration {checkpoint.iteration}"
        else:
            self.task.load_state_dict(initial_snapshot)
            target = "run-start snapshot"
        self.guard.reset()
        self.logger.log(f"rolled back to {target} ({reason})")

    def _guarded_eval(self, report: SupervisorReport) -> None:
        iteration = self.task.iteration

        def attempt() -> None:
            if self.fault_plan is not None:
                self.fault_plan.on_eval(iteration)
            self.task.periodic_eval()

        try:
            retry_call(
                attempt,
                attempts=self.eval_retry_attempts,
                base_delay=0.01,
                retry_on=(Exception,),
                describe=f"evaluation at iteration {iteration}",
                sleep=self.retry_sleep,
                logger=self.logger,
            )
        except RetryExhaustedError as exc:
            report.eval_failures += 1
            self.metrics.counter("runtime.eval_failures").inc()
            self.logger.log(f"evaluation degraded, training continues: {exc}")

    def _save_checkpoint(self, report: SupervisorReport) -> bool:
        payload = self.task.state_dict()
        iteration = self.task.iteration
        started = time.perf_counter()
        try:
            retry_call(
                lambda: self.manager.save(payload, iteration),
                attempts=self.io_retry_attempts,
                base_delay=0.01,
                retry_on=(OSError,),
                describe=f"checkpoint write at iteration {iteration}",
                sleep=self.retry_sleep,
                logger=self.logger,
            )
        except RetryExhaustedError as exc:
            report.checkpoint_failures += 1
            self.metrics.counter("runtime.checkpoint_failures").inc()
            self.logger.log(f"checkpoint degraded, training continues: {exc}")
            return False
        finally:
            elapsed = time.perf_counter() - started
            report.checkpoint_seconds += elapsed
            self.metrics.histogram("runtime.checkpoint_seconds").observe(elapsed)
        report.checkpoint_writes += 1
        self.metrics.counter("runtime.checkpoint_writes").inc()
        return True


class CallbackTask(SupervisedTask):
    """Adapt a closure-style training loop to the supervisor protocol.

    The function-style loops (backbone pretrain, listener/speaker
    training) become supervisable by splitting their body into a
    ``forward_backward(step_index)`` closure (sample data, compute the
    loss, call ``backward``; return the loss value or ``None`` to skip
    the sample) and an ``apply_update(step_number, loss)`` closure
    (optimiser step, history bookkeeping).  Model parameters, optimiser
    moments, the RNG stream, and loop-specific extra state are all
    captured in ``state_dict`` so such loops checkpoint and resume.
    """

    def __init__(
        self,
        total_iterations: int,
        forward_backward: Callable[[int], Optional[float]],
        apply_update: Callable[[int, float], None],
        *,
        optimizer,
        modules: Optional[Dict[str, Any]] = None,
        rng=None,
        fingerprint_data: Optional[Dict[str, Any]] = None,
        eval_every: int = 0,
        evaluate: Optional[Callable[[int], None]] = None,
        extra_state: Optional[Callable[[], Dict[str, Any]]] = None,
        load_extra_state: Optional[Callable[[Dict[str, Any]], None]] = None,
        result: Optional[Callable[[], Any]] = None,
    ):
        self.iteration = 0
        self.total_iterations = total_iterations
        self.eval_every = eval_every
        self._forward_backward = forward_backward
        self._apply_update = apply_update
        self._optimizer = optimizer
        self._modules = modules or {}
        self._rng = rng
        self._fingerprint_data = fingerprint_data or {}
        self._evaluate = evaluate
        self._extra_state = extra_state
        self._load_extra_state = load_extra_state
        self._result = result

    def parameters(self) -> List:
        return self._optimizer.parameters

    def forward_backward(self) -> Optional[float]:
        return self._forward_backward(self.iteration)

    def apply_step(self, loss: float) -> None:
        self.iteration += 1
        self._apply_update(self.iteration, loss)

    def skip_step(self) -> None:
        self._optimizer.zero_grad()
        self.iteration += 1

    def periodic_eval(self) -> None:
        if self._evaluate is not None:
            self._evaluate(self.iteration)

    def fingerprint_data(self) -> Dict[str, Any]:
        return self._fingerprint_data

    def result(self) -> Any:
        return self._result() if self._result is not None else None

    def state_dict(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {
            "iteration": self.iteration,
            "optimizer": self._optimizer.state_dict(),
            "modules": {name: module.state_dict()
                        for name, module in self._modules.items()},
        }
        if not self._modules:
            # Loose parameters not owned by a Module tree.
            state["params"] = [p.data.copy() for p in self._optimizer.parameters]
        if self._rng is not None:
            state["rng"] = _copy_rng_state(self._rng.bit_generator.state)
        if self._extra_state is not None:
            state["extra"] = self._extra_state()
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.iteration = int(state["iteration"])
        self._optimizer.load_state_dict(state["optimizer"])
        for name, module in self._modules.items():
            module.load_state_dict(state["modules"][name])
        if not self._modules:
            for param, value in zip(self._optimizer.parameters, state["params"]):
                param.data[...] = value
        if self._rng is not None and "rng" in state:
            self._rng.bit_generator.state = _copy_rng_state(state["rng"])
        if self._load_extra_state is not None and "extra" in state:
            self._load_extra_state(state["extra"])


def _copy_rng_state(state: Dict) -> Dict:
    """Deep-copy a numpy BitGenerator state dict (nested dicts/arrays)."""
    copied: Dict = {}
    for key, value in state.items():
        if isinstance(value, dict):
            copied[key] = _copy_rng_state(value)
        elif hasattr(value, "copy"):
            copied[key] = value.copy()
        else:
            copied[key] = value
    return copied
