"""Deterministic fault injection for exercising recovery paths.

A :class:`FaultPlan` describes exactly which faults fire and when —
"inject NaN into the gradients at iteration 3", "raise ``IOError`` on
the second checkpoint write", "corrupt the checkpoint file after the
first write", "crash the process before iteration 5".  The supervisor
and checkpoint manager call the plan's hooks at the corresponding
points, so every recovery path (skip-step, rollback, checkpoint
fallback, resume) is testable without real hardware faults.

Faults default to *fire-once* semantics: after a fault fires it is
spent, modelling transient failures.  Set ``fire_once=False`` for
persistent faults (e.g. a permanently failing disk) to exercise
graceful-degradation paths instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np


class SimulatedCrash(RuntimeError):
    """Injected process death; tests catch this to simulate a kill."""


def corrupt_file(path: str, mode: str = "truncate") -> None:
    """Damage a file on disk the way real faults do.

    ``truncate`` keeps only the first half of the file (torn write);
    ``flip`` inverts a byte in the payload region (bit rot); ``zero``
    overwrites the payload with zeros (bad sector).
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    if mode == "truncate":
        damaged = raw[: max(1, len(raw) // 2)]
    elif mode == "flip":
        position = (3 * len(raw)) // 4
        damaged = raw[:position] + bytes([raw[position] ^ 0xFF]) + raw[position + 1:]
    elif mode == "zero":
        keep = min(len(raw), 16)
        damaged = raw[:keep] + b"\x00" * (len(raw) - keep)
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    with open(path, "wb") as handle:
        handle.write(damaged)


@dataclass
class FaultPlan:
    """Schedule of injected faults, keyed by iteration or write index.

    Iterations are 1-based (the first training step is iteration 1);
    checkpoint write indices are 0-based and count *attempted* writes.
    """

    nan_grad_at: Set[int] = field(default_factory=set)
    nonfinite_loss_at: Set[int] = field(default_factory=set)
    crash_at_iteration: Optional[int] = None
    checkpoint_io_error_on: Set[int] = field(default_factory=set)
    corrupt_checkpoint_on: Set[int] = field(default_factory=set)
    corruption_mode: str = "flip"
    eval_error_at: Set[int] = field(default_factory=set)
    #: Serving-fleet faults: replica id -> 1-based request ordinal at
    #: which that replica process dies upon receipt (simulated kill).
    kill_replica_on_request: Dict[int, int] = field(default_factory=dict)
    fire_once: bool = True
    _fired: Set[str] = field(default_factory=set, repr=False)

    def _fires(self, kind: str, key: int, scheduled: bool) -> bool:
        if not scheduled:
            return False
        tag = f"{kind}:{key}"
        if self.fire_once and tag in self._fired:
            return False
        self._fired.add(tag)
        return True

    # ------------------------------------------------------------------
    # Training-step hooks (called by the supervisor)
    # ------------------------------------------------------------------
    def before_step(self, iteration: int) -> None:
        """Raise :class:`SimulatedCrash` before the given iteration runs."""
        if self._fires("crash", iteration, iteration == self.crash_at_iteration):
            raise SimulatedCrash(f"injected crash before iteration {iteration}")

    def mutate_gradients(self, iteration: int, parameters) -> None:
        """Poison the first parameter's gradient with NaN."""
        if not self._fires("nan-grad", iteration, iteration in self.nan_grad_at):
            return
        for param in parameters:
            if param.grad is not None:
                param.grad.flat[0] = np.nan
                return

    def mutate_loss(self, iteration: int, loss: float) -> float:
        if self._fires("nan-loss", iteration, iteration in self.nonfinite_loss_at):
            return float("nan")
        return loss

    # ------------------------------------------------------------------
    # Serving-fleet hooks (called by repro.serve.replica)
    # ------------------------------------------------------------------
    def on_replica_request(self, replica_id: int, ordinal: int) -> None:
        """Crash replica ``replica_id`` on receiving its Nth request.

        Raises :class:`SimulatedCrash`, which the replica entry point
        turns into an ``os._exit`` — the process dies mid-service with
        requests in flight, exactly like a real kill, so the router's
        requeue/respawn paths are exercised deterministically.
        """
        scheduled = self.kill_replica_on_request.get(replica_id) == ordinal
        if self._fires("replica-kill", replica_id, scheduled):
            raise SimulatedCrash(
                f"injected crash of replica {replica_id} on request {ordinal}"
            )

    def on_eval(self, iteration: int) -> None:
        if self._fires("eval", iteration, iteration in self.eval_error_at):
            raise RuntimeError(f"injected evaluation failure at iteration {iteration}")

    # ------------------------------------------------------------------
    # Checkpoint hooks (called by the CheckpointManager)
    # ------------------------------------------------------------------
    def on_checkpoint_write(self, index: int) -> None:
        if self._fires("ckpt-io", index, index in self.checkpoint_io_error_on):
            raise IOError(f"injected IO error on checkpoint write #{index}")

    def after_checkpoint_write(self, index: int, path: str) -> None:
        if self._fires("ckpt-corrupt", index, index in self.corrupt_checkpoint_on):
            if os.path.exists(path):
                corrupt_file(path, mode=self.corruption_mode)
