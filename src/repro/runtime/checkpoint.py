"""Atomic, checksummed, rotated training checkpoints.

A checkpoint is a single file::

    MAGIC (14 bytes) || sha256 hexdigest of body (64 bytes) || "\\n" || body

where ``body`` is the pickled record ``{"fingerprint", "iteration",
"payload"}``.  Writes go to a temporary file in the same directory,
are fsynced, and then atomically renamed into place, so a crash
mid-write can never shadow a good checkpoint with a torn one.  Loads
verify the checksum and fall back to the previous rotation when the
newest file is corrupt.

The fingerprint is a stable hash of the training configuration; a
resume against a checkpoint written under a different configuration is
refused rather than silently producing a chimera run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

MAGIC = b"REPRO-CKPT-v1\n"
_DIGEST_LEN = 64  # sha256 hexdigest


class CheckpointError(RuntimeError):
    """Base class for checkpoint failures."""


class CheckpointCorruptError(CheckpointError):
    """The file is truncated, has a bad checksum, or fails to unpickle."""


class FingerprintMismatchError(CheckpointError):
    """The checkpoint was written under a different training configuration."""


def config_fingerprint(data: Any) -> str:
    """Stable short hash of a JSON-serialisable configuration description."""
    blob = json.dumps(data, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class Checkpoint:
    """A verified checkpoint loaded from disk."""

    path: str
    iteration: int
    fingerprint: Optional[str]
    payload: Dict[str, Any]


class CheckpointManager:
    """Write and recover rotated checkpoints under one directory.

    Parameters
    ----------
    directory:
        Where ``ckpt-<iteration>.ckpt`` files live (created if absent).
    keep:
        Number of most-recent checkpoints retained; older rotations are
        deleted after each successful write.
    fingerprint:
        Configuration fingerprint stamped into every write and checked
        on every load (``None`` disables the check).
    fault_plan:
        Optional :class:`repro.runtime.faults.FaultPlan`; its
        checkpoint hooks are invoked around each write so IO-failure
        and corruption recovery paths are testable.
    """

    def __init__(self, directory: str, keep: int = 3,
                 fingerprint: Optional[str] = None, fault_plan=None,
                 logger=None):
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = directory
        self.keep = keep
        self.fingerprint = fingerprint
        self.fault_plan = fault_plan
        self.logger = logger
        self._write_index = 0
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, iteration: int) -> str:
        return os.path.join(self.directory, f"ckpt-{iteration:08d}.ckpt")

    def paths(self) -> List[str]:
        """Checkpoint files sorted oldest-first (by iteration number)."""
        names = [n for n in os.listdir(self.directory)
                 if n.startswith("ckpt-") and n.endswith(".ckpt")]
        return [os.path.join(self.directory, n) for n in sorted(names)]

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def save(self, payload: Dict[str, Any], iteration: int) -> str:
        """Atomically write one checkpoint and rotate old ones."""
        index = self._write_index
        self._write_index += 1
        if self.fault_plan is not None:
            self.fault_plan.on_checkpoint_write(index)
        body = pickle.dumps(
            {
                "fingerprint": self.fingerprint,
                "iteration": int(iteration),
                "payload": payload,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(body).hexdigest().encode("ascii")
        path = self.path_for(iteration)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(digest)
            handle.write(b"\n")
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self.fault_plan is not None:
            self.fault_plan.after_checkpoint_write(index, path)
        self._rotate()
        return path

    def _rotate(self) -> None:
        for stale in self.paths()[: -self.keep]:
            try:
                os.remove(stale)
            except OSError:
                pass  # a missing/locked stale rotation is not fatal

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def load(self, path: str) -> Checkpoint:
        """Load and verify one checkpoint file."""
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise CheckpointCorruptError(f"cannot read {path}: {exc}") from exc
        header_len = len(MAGIC) + _DIGEST_LEN + 1
        if len(raw) < header_len or not raw.startswith(MAGIC):
            raise CheckpointCorruptError(f"{path}: bad or truncated header")
        digest = raw[len(MAGIC) : len(MAGIC) + _DIGEST_LEN]
        body = raw[header_len:]
        if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
            raise CheckpointCorruptError(f"{path}: checksum mismatch")
        try:
            record = pickle.loads(body)
        except Exception as exc:
            raise CheckpointCorruptError(f"{path}: unpickle failed: {exc}") from exc
        fingerprint = record.get("fingerprint")
        if (self.fingerprint is not None and fingerprint is not None
                and fingerprint != self.fingerprint):
            raise FingerprintMismatchError(
                f"{path} was written under configuration {fingerprint}, "
                f"this run is {self.fingerprint}; refusing to resume"
            )
        return Checkpoint(
            path=path,
            iteration=int(record["iteration"]),
            fingerprint=fingerprint,
            payload=record["payload"],
        )

    def load_latest(self) -> Optional[Checkpoint]:
        """Newest valid checkpoint, falling back across corrupt rotations.

        Returns ``None`` when no usable checkpoint exists; a fingerprint
        mismatch propagates (it is a configuration error, not damage).
        """
        for path in reversed(self.paths()):
            try:
                return self.load(path)
            except CheckpointCorruptError as exc:
                if self.logger is not None:
                    self.logger.log(f"skipping corrupt checkpoint: {exc}")
        return None
