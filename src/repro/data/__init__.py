"""Synthetic grounding datasets standing in for RefCOCO / RefCOCO+ / RefCOCOg.

The generator preserves every property the paper's evaluation depends on:
scenes contain multiple same-category distractors so language is required
for disambiguation; the RefCOCO flavour uses short phrases with location
words, RefCOCO+ forbids location words (appearance only), RefCOCOg uses
long relational sentences; testA contains person images and testB
non-person images.
"""

from repro.data.scenes import (
    CATEGORIES,
    COLOR_VALUES,
    COLORS,
    PERSON_CATEGORY,
    Scene,
    SceneGenerator,
    SceneObject,
)
from repro.data.render import render_scene
from repro.data.expressions import ExpressionGenerator, describe_location
from repro.data.refcoco import (
    DatasetSpec,
    GroundingDataset,
    GroundingSample,
    REFCOCO,
    REFCOCO_PLUS,
    REFCOCOG,
    build_dataset,
    dataset_statistics,
)
from repro.data.loader import BatchIterator, encode_batch
from repro.data.augment import augment_samples, color_jitter, flip_tokens, hflip_sample

__all__ = [
    "CATEGORIES",
    "COLORS",
    "COLOR_VALUES",
    "PERSON_CATEGORY",
    "Scene",
    "SceneObject",
    "SceneGenerator",
    "render_scene",
    "ExpressionGenerator",
    "describe_location",
    "DatasetSpec",
    "GroundingSample",
    "GroundingDataset",
    "build_dataset",
    "dataset_statistics",
    "REFCOCO",
    "REFCOCO_PLUS",
    "REFCOCOG",
    "BatchIterator",
    "encode_batch",
    "augment_samples",
    "color_jitter",
    "flip_tokens",
    "hflip_sample",
]
