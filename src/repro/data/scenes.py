"""Synthetic multi-object scene model and generator.

A scene is a set of coloured, categorised objects with bounding boxes on
a small canvas.  The generator controls the same-category distractor
density that differentiates RefCOCO(+) (~3.9 objects of the target's
type per image) from RefCOCOg (~1.6), and guarantees that distractors
remain distinguishable by the attribute classes the expression grammar
uses (colour, relative size, location).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.detection.boxes import iou_matrix
from repro.utils.seeding import spawn_rng

PERSON_CATEGORY = "person"

#: Object categories; each maps to a distinct rendered glyph.
CATEGORIES: Tuple[str, ...] = (
    PERSON_CATEGORY,
    "car",
    "dog",
    "ball",
    "cup",
    "chair",
    "plant",
    "lamp",
)

#: Colour names available to the grammar.
COLORS: Tuple[str, ...] = (
    "red",
    "green",
    "blue",
    "yellow",
    "purple",
    "orange",
    "white",
    "brown",
)

#: RGB values (0-1 floats) for each colour name.
COLOR_VALUES: Dict[str, Tuple[float, float, float]] = {
    "red": (0.85, 0.15, 0.15),
    "green": (0.15, 0.75, 0.2),
    "blue": (0.2, 0.35, 0.9),
    "yellow": (0.9, 0.85, 0.15),
    "purple": (0.6, 0.2, 0.75),
    "orange": (0.95, 0.55, 0.1),
    "white": (0.95, 0.95, 0.95),
    "brown": (0.55, 0.35, 0.15),
}


@dataclass
class SceneObject:
    """One object instance: category, colour and box in pixel coordinates."""

    category: str
    color: str
    box: np.ndarray  # (4,) x1, y1, x2, y2

    @property
    def width(self) -> float:
        return float(self.box[2] - self.box[0])

    @property
    def height(self) -> float:
        return float(self.box[3] - self.box[1])

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (
            float(self.box[0] + self.box[2]) / 2.0,
            float(self.box[1] + self.box[3]) / 2.0,
        )


@dataclass
class Scene:
    """A canvas plus its object instances."""

    height: int
    width: int
    objects: List[SceneObject] = field(default_factory=list)

    def same_category(self, obj: SceneObject) -> List[SceneObject]:
        """All objects sharing ``obj``'s category, including ``obj``."""
        return [other for other in self.objects if other.category == obj.category]

    def category_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for obj in self.objects:
            counts[obj.category] = counts.get(obj.category, 0) + 1
        return counts

    def contains_person(self) -> bool:
        return any(obj.category == PERSON_CATEGORY for obj in self.objects)

    def boxes(self) -> np.ndarray:
        """Stack all object boxes into an ``(n, 4)`` array."""
        return np.stack([obj.box for obj in self.objects]) if self.objects else np.empty((0, 4))


class SceneGenerator:
    """Sample scenes with controllable distractor density.

    Parameters
    ----------
    height, width:
        Canvas size in pixels.
    same_type_density:
        Target number of same-category instances per scene; ~3.9 for
        RefCOCO(+) style scenes, ~1.6 for RefCOCOg style scenes.
    distinct_colors:
        When True (required for the RefCOCO+ flavour) same-category
        instances always receive pairwise distinct colours so appearance
        alone can disambiguate.
    max_place_attempts:
        Rejection-sampling budget for non-overlapping placement.
    """

    def __init__(
        self,
        height: int = 48,
        width: int = 72,
        same_type_density: float = 3.9,
        distinct_colors: bool = False,
        min_size: int = 10,
        max_size: int = 26,
        max_overlap_iou: float = 0.08,
        max_place_attempts: int = 60,
        rng: Optional[np.random.Generator] = None,
    ):
        if height < 4 * min_size // 2 or width < 4 * min_size // 2:
            raise ValueError("canvas too small for the configured object sizes")
        self.height = height
        self.width = width
        self.same_type_density = same_type_density
        self.distinct_colors = distinct_colors
        self.min_size = min_size
        self.max_size = max_size
        self.max_overlap_iou = max_overlap_iou
        self.max_place_attempts = max_place_attempts
        self._rng = rng if rng is not None else spawn_rng("scene-generator")

    # ------------------------------------------------------------------
    def generate(
        self,
        require_person: Optional[bool] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Scene:
        """Sample one scene.

        ``require_person=True`` forces a multi-person scene (testA
        composition); ``require_person=False`` excludes persons (testB).
        """
        rng = rng if rng is not None else self._rng
        scene = Scene(self.height, self.width)

        main_category = self._pick_main_category(require_person, rng)
        main_count = self._sample_group_size(rng)
        extra_count = int(rng.integers(0, 3))

        layout: List[str] = [main_category] * main_count
        forbidden = {PERSON_CATEGORY} if require_person is False else set()
        side_pool = [c for c in CATEGORIES if c != main_category and c not in forbidden]
        for _ in range(extra_count):
            layout.append(str(rng.choice(side_pool)))

        for category in layout:
            placed = self._place_object(scene, category, rng)
            if placed is not None:
                scene.objects.append(placed)

        # Placement can fail under rejection sampling; guarantee the
        # split-defining composition survives.
        if require_person and sum(1 for o in scene.objects if o.category == PERSON_CATEGORY) < 2:
            return self.generate(require_person=require_person, rng=rng)
        if len(scene.objects) < 2:
            return self.generate(require_person=require_person, rng=rng)
        return scene

    # ------------------------------------------------------------------
    def _pick_main_category(self, require_person: Optional[bool],
                            rng: np.random.Generator) -> str:
        if require_person:
            return PERSON_CATEGORY
        pool = [c for c in CATEGORIES if not (require_person is False and c == PERSON_CATEGORY)]
        return str(rng.choice(pool))

    def _sample_group_size(self, rng: np.random.Generator) -> int:
        """Sample the main-category group size around ``same_type_density``."""
        low = max(2, int(np.floor(self.same_type_density - 1)))
        high = max(low + 1, int(np.ceil(self.same_type_density + 1)))
        return int(rng.integers(low, high + 1))

    def _sample_box(self, rng: np.random.Generator) -> np.ndarray:
        width = float(rng.integers(self.min_size, self.max_size + 1))
        height = float(rng.integers(self.min_size, self.max_size + 1))
        x1 = float(rng.uniform(1.0, self.width - width - 1.0))
        y1 = float(rng.uniform(1.0, self.height - height - 1.0))
        return np.asarray([x1, y1, x1 + width, y1 + height])

    def _place_object(self, scene: Scene, category: str,
                      rng: np.random.Generator) -> Optional[SceneObject]:
        existing = scene.boxes()
        for _ in range(self.max_place_attempts):
            box = self._sample_box(rng)
            if len(existing) and iou_matrix(box[None], existing).max() > self.max_overlap_iou:
                continue
            color = self._pick_color(scene, category, rng)
            if color is None:
                return None
            return SceneObject(category=category, color=color, box=box)
        return None

    def _pick_color(self, scene: Scene, category: str,
                    rng: np.random.Generator) -> Optional[str]:
        if not self.distinct_colors:
            return str(rng.choice(COLORS))
        used = {obj.color for obj in scene.objects if obj.category == category}
        available = [c for c in COLORS if c not in used]
        if not available:
            return None
        return str(rng.choice(available))
