"""Batching utilities: encode samples into padded numpy minibatches."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.data.refcoco import GroundingSample
from repro.text.vocab import Vocabulary
from repro.utils.seeding import spawn_rng


def encode_batch(
    samples: Sequence[GroundingSample],
    vocab: Vocabulary,
    max_query_length: int,
) -> Dict[str, np.ndarray]:
    """Stack a list of samples into model-ready arrays.

    Returns a dict with ``images (B,3,H,W)``, ``token_ids (B,L)``,
    ``token_mask (B,L)`` and ``target_boxes (B,4)``.
    """
    images = np.stack([s.image for s in samples])
    ids = np.empty((len(samples), max_query_length), dtype=np.int64)
    mask = np.empty((len(samples), max_query_length), dtype=np.float64)
    for row, sample in enumerate(samples):
        ids[row], mask[row] = vocab.encode(sample.tokens, max_query_length)
    boxes = np.stack([s.target_box for s in samples])
    return {
        "images": images,
        "token_ids": ids,
        "token_mask": mask,
        "target_boxes": boxes,
    }


class BatchIterator:
    """Iterate minibatches over a sample list, optionally shuffled.

    The iterator is re-usable: each ``__iter__`` call produces a fresh
    epoch (with a new permutation when ``shuffle`` is on).
    """

    def __init__(
        self,
        samples: Sequence[GroundingSample],
        vocab: Vocabulary,
        max_query_length: int,
        batch_size: int = 16,
        shuffle: bool = True,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.samples = list(samples)
        self.vocab = vocab
        self.max_query_length = max_query_length
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else spawn_rng("batch-iterator")

    def __len__(self) -> int:
        full, remainder = divmod(len(self.samples), self.batch_size)
        return full if (self.drop_last or remainder == 0) else full + 1

    def __iter__(self) -> Iterator[Dict[str, np.ndarray]]:
        order = np.arange(len(self.samples))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = order[start : start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            batch_samples: List[GroundingSample] = [self.samples[i] for i in chunk]
            yield encode_batch(batch_samples, self.vocab, self.max_query_length)
