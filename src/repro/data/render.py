"""Rasterise scenes to RGB arrays (the synthetic stand-in for MS-COCO images).

Each category renders as a distinct filled glyph in the object's colour,
so a small CNN can recover category (shape), colour, size and position —
exactly the attribute classes the referring-expression grammar uses.
Images are ``(3, H, W)`` float arrays in ``[0, 1]`` with light sensor
noise and a dark textured background.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.data.scenes import COLOR_VALUES, Scene, SceneObject
from repro.utils.seeding import spawn_rng


def _normalized_grid(height: int, width: int):
    """Coordinate grids in [-1, 1] spanning the glyph's bounding box."""
    ys = np.linspace(-1.0, 1.0, height)[:, None] * np.ones((1, width))
    xs = np.linspace(-1.0, 1.0, width)[None, :] * np.ones((height, 1))
    return xs, ys


def _glyph_circle(h: int, w: int) -> np.ndarray:
    xs, ys = _normalized_grid(h, w)
    return xs**2 + ys**2 <= 1.0


def _glyph_vertical_capsule(h: int, w: int) -> np.ndarray:
    """Person: narrow vertical ellipse body plus a head blob on top."""
    xs, ys = _normalized_grid(h, w)
    body = (xs / 0.55) ** 2 + ((ys - 0.25) / 0.75) ** 2 <= 1.0
    head = (xs / 0.35) ** 2 + ((ys + 0.65) / 0.35) ** 2 <= 1.0
    return body | head


def _glyph_horizontal_rect(h: int, w: int) -> np.ndarray:
    """Car: wide rectangle body with a flat cabin bump."""
    xs, ys = _normalized_grid(h, w)
    body = (np.abs(xs) <= 0.95) & (ys >= -0.1) & (ys <= 0.9)
    cabin = (np.abs(xs) <= 0.5) & (ys >= -0.8) & (ys < -0.1)
    return body | cabin


def _glyph_horizontal_ellipse(h: int, w: int) -> np.ndarray:
    xs, ys = _normalized_grid(h, w)
    return (xs / 0.95) ** 2 + (ys / 0.6) ** 2 <= 1.0


def _glyph_square(h: int, w: int) -> np.ndarray:
    xs, ys = _normalized_grid(h, w)
    return (np.abs(xs) <= 0.8) & (np.abs(ys) <= 0.8)


def _glyph_cross(h: int, w: int) -> np.ndarray:
    xs, ys = _normalized_grid(h, w)
    return (np.abs(xs) <= 0.3) | (np.abs(ys) <= 0.3)


def _glyph_triangle(h: int, w: int) -> np.ndarray:
    xs, ys = _normalized_grid(h, w)
    return (ys >= -0.9) & (np.abs(xs) <= (ys + 0.9) / 1.9)


def _glyph_diamond(h: int, w: int) -> np.ndarray:
    xs, ys = _normalized_grid(h, w)
    return np.abs(xs) + np.abs(ys) <= 1.0


def _glyph_truck(h: int, w: int) -> np.ndarray:
    """Truck: tall box trailer with a shorter cab at the front."""
    xs, ys = _normalized_grid(h, w)
    trailer = (xs >= -0.95) & (xs <= 0.45) & (ys >= -0.85) & (ys <= 0.9)
    cab = (xs > 0.45) & (xs <= 0.95) & (ys >= -0.2) & (ys <= 0.9)
    return trailer | cab


def _glyph_cone(h: int, w: int) -> np.ndarray:
    """Traffic cone: narrow triangle on a flat base strip."""
    xs, ys = _normalized_grid(h, w)
    body = (ys >= -0.9) & (ys <= 0.6) & (np.abs(xs) <= 0.15 + 0.5 * (ys + 0.9) / 1.5)
    base = (ys > 0.6) & (ys <= 0.9) & (np.abs(xs) <= 0.85)
    return body | base


#: Category name -> glyph mask factory.
GLYPHS: Dict[str, Callable[[int, int], np.ndarray]] = {
    "person": _glyph_vertical_capsule,
    "car": _glyph_horizontal_rect,
    "dog": _glyph_horizontal_ellipse,
    "ball": _glyph_circle,
    "cup": _glyph_square,
    "chair": _glyph_cross,
    "plant": _glyph_triangle,
    "lamp": _glyph_diamond,
    # Driving-scenario categories (repro.scenarios.driving).
    "truck": _glyph_truck,
    "cone": _glyph_cone,
}


def render_object(canvas: np.ndarray, obj: SceneObject) -> None:
    """Paint ``obj`` onto a ``(3, H, W)`` canvas in place."""
    _, canvas_h, canvas_w = canvas.shape
    x1 = int(np.clip(np.floor(obj.box[0]), 0, canvas_w - 1))
    y1 = int(np.clip(np.floor(obj.box[1]), 0, canvas_h - 1))
    x2 = int(np.clip(np.ceil(obj.box[2]), x1 + 1, canvas_w))
    y2 = int(np.clip(np.ceil(obj.box[3]), y1 + 1, canvas_h))
    glyph = GLYPHS[obj.category](y2 - y1, x2 - x1)
    color = np.asarray(COLOR_VALUES[obj.color])
    region = canvas[:, y1:y2, x1:x2]
    region[:, glyph] = color[:, None]


def render_scene(scene: Scene, noise_std: float = 0.02,
                 rng: np.random.Generator = None) -> np.ndarray:
    """Render a scene to a ``(3, H, W)`` float image in ``[0, 1]``.

    The background is a dim horizontal gradient (so absolute position is
    weakly visible to the CNN, as in natural photographs) plus Gaussian
    sensor noise.
    """
    rng = rng if rng is not None else spawn_rng("render")
    canvas = np.zeros((3, scene.height, scene.width))
    gradient = np.linspace(0.08, 0.16, scene.width)[None, None, :]
    canvas += gradient
    for obj in scene.objects:
        render_object(canvas, obj)
    if noise_std > 0:
        canvas = canvas + rng.normal(0.0, noise_std, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)
