"""Training-time data augmentation for grounding samples.

Horizontal flipping — the standard detection augmentation — is
non-trivial for visual grounding: mirroring the image inverts the
spatial language, so "left" / "right" (and "left of" / "right of"
relational phrases) must be swapped in the query.  Colour jitter
perturbs the rendering without touching language.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.data.refcoco import GroundingSample
from repro.utils.seeding import spawn_rng

#: Token-level swaps applied when an image is mirrored.
_FLIP_SWAPS = {"left": "right", "right": "left"}


def flip_tokens(tokens: List[str]) -> List[str]:
    """Swap spatial words for a horizontally mirrored image."""
    return [_FLIP_SWAPS.get(token, token) for token in tokens]


def hflip_sample(sample: GroundingSample) -> GroundingSample:
    """Return a horizontally mirrored copy with consistent language."""
    width = sample.image.shape[2]
    image = sample.image[:, :, ::-1].copy()
    box = sample.target_box.copy()
    box[0], box[2] = width - sample.target_box[2], width - sample.target_box[0]
    tokens = flip_tokens(sample.tokens)
    return GroundingSample(
        image=image,
        query=" ".join(tokens),
        tokens=tokens,
        target_box=box,
        target_index=sample.target_index,
        scene=sample.scene,
        split=sample.split,
    )


def color_jitter(sample: GroundingSample, strength: float = 0.05,
                 rng: Optional[np.random.Generator] = None) -> GroundingSample:
    """Perturb brightness/contrast per channel; language untouched."""
    rng = rng if rng is not None else spawn_rng("color-jitter")
    gain = 1.0 + rng.uniform(-strength, strength, size=(3, 1, 1))
    bias = rng.uniform(-strength, strength, size=(3, 1, 1))
    image = np.clip(sample.image * gain + bias, 0.0, 1.0)
    return GroundingSample(
        image=image,
        query=sample.query,
        tokens=list(sample.tokens),
        target_box=sample.target_box.copy(),
        target_index=sample.target_index,
        scene=sample.scene,
        split=sample.split,
    )


def augment_samples(samples: List[GroundingSample], flip_probability: float = 0.5,
                    jitter_strength: float = 0.05,
                    rng: Optional[np.random.Generator] = None) -> List[GroundingSample]:
    """Apply stochastic flip + jitter to a sample list (fresh copies)."""
    rng = rng if rng is not None else spawn_rng("augment")
    out: List[GroundingSample] = []
    for sample in samples:
        if rng.random() < flip_probability:
            sample = hflip_sample(sample)
        out.append(color_jitter(sample, strength=jitter_strength, rng=rng))
    return out
