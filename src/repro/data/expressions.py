"""Referring-expression grammar with verified uniqueness.

The generator composes attribute constraints (category, colour, relative
size, absolute location, spatial relation to another object) and renders
them through flavour-specific templates:

* ``refcoco``  — short phrases, location words allowed (avg ~3.6 tokens);
* ``refcoco+`` — short phrases, **no** location words (appearance only);
* ``refcocog`` — long sentences with relational clauses (avg ~8.4 tokens).

Every emitted expression is verified to denote exactly one object under
the grammar's compositional semantics (:meth:`Constraints.resolve`), so
ground truth is unambiguous by construction — mirroring the human
verification step of the ReferItGame annotation protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.scenes import Scene, SceneObject
from repro.utils.seeding import spawn_rng

LOCATION_WORDS = ("left", "right", "top", "bottom", "middle")
SIZE_WORDS = {"big": ("big", "large"), "small": ("small", "little")}
RELATIONS = ("left of", "right of", "above", "below", "next to")

#: Minimum pixel margin for an absolute-location extreme to count.
_LOCATION_MARGIN = 2.0
#: Minimum area ratio for a size superlative to count.
_SIZE_RATIO = 1.25
#: Center-offset threshold (px) for directional relations.
_RELATION_THRESHOLD = 4.0


def describe_location(obj: SceneObject, group: Sequence[SceneObject]) -> Optional[str]:
    """Return the absolute-location word that uniquely picks ``obj`` from ``group``.

    ``obj`` must be a member of ``group``.  Returns ``None`` when no
    location word applies with a safe margin.
    """
    others = [o for o in group if o is not obj]
    if not others:
        return None
    cx, cy = obj.center
    other_x = [o.center[0] for o in others]
    other_y = [o.center[1] for o in others]
    if cx < min(other_x) - _LOCATION_MARGIN:
        return "left"
    if cx > max(other_x) + _LOCATION_MARGIN:
        return "right"
    if cy < min(other_y) - _LOCATION_MARGIN:
        return "top"
    if cy > max(other_y) + _LOCATION_MARGIN:
        return "bottom"
    if len(group) % 2 == 1:
        xs = sorted(o.center[0] for o in group)
        median = xs[len(xs) // 2]
        if abs(cx - median) < 1e-9 and _is_strict_median(cx, xs):
            return "middle"
    return None


def _is_strict_median(value: float, sorted_xs: Sequence[float]) -> bool:
    mid = len(sorted_xs) // 2
    left_ok = mid == 0 or sorted_xs[mid - 1] < value - _LOCATION_MARGIN
    right_ok = mid == len(sorted_xs) - 1 or sorted_xs[mid + 1] > value + _LOCATION_MARGIN
    return left_ok and right_ok


def describe_size(obj: SceneObject, group: Sequence[SceneObject]) -> Optional[str]:
    """Return ``"big"``/``"small"`` if ``obj`` is the clear area extreme."""
    others = [o for o in group if o is not obj]
    if not others:
        return None
    areas = [o.area for o in others]
    if obj.area >= max(areas) * _SIZE_RATIO:
        return "big"
    if obj.area * _SIZE_RATIO <= min(areas):
        return "small"
    return None


def relation_between(target: SceneObject, anchor: SceneObject) -> str:
    """Directional relation of ``target`` with respect to ``anchor``."""
    tx, ty = target.center
    ax, ay = anchor.center
    dx, dy = tx - ax, ty - ay
    if abs(dx) >= abs(dy):
        if dx < -_RELATION_THRESHOLD:
            return "left of"
        if dx > _RELATION_THRESHOLD:
            return "right of"
    else:
        if dy < -_RELATION_THRESHOLD:
            return "above"
        if dy > _RELATION_THRESHOLD:
            return "below"
    return "next to"


@dataclass(frozen=True)
class Constraints:
    """A compositional reference: filters applied in a fixed order.

    ``resolve`` implements the semantics: filter by category, then
    colour; apply the size superlative; apply the absolute-location
    selector; finally apply the relation (directional predicate with
    respect to the anchor, nearest candidate wins).
    """

    category: str
    color: Optional[str] = None
    size: Optional[str] = None
    location: Optional[str] = None
    relation: Optional[str] = None
    anchor_category: Optional[str] = None
    anchor_color: Optional[str] = None

    def resolve(self, scene: Scene) -> List[SceneObject]:
        candidates = [o for o in scene.objects if o.category == self.category]
        if self.color is not None:
            candidates = [o for o in candidates if o.color == self.color]
        if self.size is not None and candidates:
            candidates = self._apply_size(candidates)
        if self.location is not None and candidates:
            candidates = self._apply_location(candidates)
        if self.relation is not None and candidates:
            candidates = self._apply_relation(scene, candidates)
        return candidates

    def _apply_size(self, candidates: List[SceneObject]) -> List[SceneObject]:
        if len(candidates) == 1:
            return candidates
        areas = np.asarray([o.area for o in candidates])
        index = int(areas.argmax()) if self.size == "big" else int(areas.argmin())
        ordered = np.sort(areas)
        if self.size == "big" and ordered[-1] < ordered[-2] * _SIZE_RATIO:
            return []
        if self.size == "small" and ordered[0] * _SIZE_RATIO > ordered[1]:
            return []
        return [candidates[index]]

    def _apply_location(self, candidates: List[SceneObject]) -> List[SceneObject]:
        if len(candidates) == 1:
            return candidates
        chosen = [o for o in candidates if describe_location(o, candidates) == self.location]
        return chosen

    def _apply_relation(self, scene: Scene, candidates: List[SceneObject]) -> List[SceneObject]:
        anchors = [
            o
            for o in scene.objects
            if o.category == self.anchor_category
            and (self.anchor_color is None or o.color == self.anchor_color)
        ]
        if len(anchors) != 1:
            return []
        anchor = anchors[0]
        satisfying = [
            o
            for o in candidates
            if o is not anchor and relation_between(o, anchor) == self.relation
        ]
        if not satisfying:
            return []
        distances = [
            np.hypot(o.center[0] - anchor.center[0], o.center[1] - anchor.center[1])
            for o in satisfying
        ]
        return [satisfying[int(np.argmin(distances))]]


class ExpressionGenerator:
    """Produce verified referring expressions in a dataset flavour.

    Parameters
    ----------
    flavor:
        ``"refcoco"``, ``"refcoco+"`` or ``"refcocog"``.
    """

    def __init__(self, flavor: str, rng: Optional[np.random.Generator] = None):
        if flavor not in ("refcoco", "refcoco+", "refcocog"):
            raise ValueError(f"unknown dataset flavor: {flavor}")
        self.flavor = flavor
        self._rng = rng if rng is not None else spawn_rng(f"expr-{flavor}")

    # ------------------------------------------------------------------
    def generate(self, scene: Scene, target: SceneObject,
                 rng: Optional[np.random.Generator] = None) -> Optional[str]:
        """Return a query uniquely denoting ``target``, or ``None``."""
        rng = rng if rng is not None else self._rng
        constraints = self._find_unique_constraints(scene, target, rng)
        if constraints is None:
            return None
        return self._render(constraints, rng)

    # ------------------------------------------------------------------
    def _candidate_constraints(self, scene: Scene, target: SceneObject,
                               rng: np.random.Generator) -> List[Constraints]:
        group = scene.same_category(target)
        base = Constraints(category=target.category)
        options: List[Constraints] = [base]

        color = replace(base, color=target.color)
        size_word = describe_size(target, group)
        size_color_group = [o for o in group if o.color == target.color]
        size_in_color = describe_size(target, size_color_group)

        if self.flavor in ("refcoco", "refcocog"):
            location = describe_location(target, group)
            if location:
                options.append(replace(base, location=location))
            options.append(color)
            loc_in_color = describe_location(target, size_color_group)
            if loc_in_color:
                options.append(replace(color, location=loc_in_color))
            if size_word:
                options.append(replace(base, size=size_word))
            if size_in_color:
                options.append(replace(color, size=size_in_color))
        else:  # refcoco+: appearance only
            options.append(color)
            if size_word:
                options.append(replace(base, size=size_word))
            if size_in_color:
                options.append(replace(color, size=size_in_color))

        if self.flavor == "refcocog":
            options.extend(self._relation_constraints(scene, target, rng))
        return options

    def _relation_constraints(self, scene: Scene, target: SceneObject,
                              rng: np.random.Generator) -> List[Constraints]:
        """Relational references against unambiguous anchor objects."""
        results: List[Constraints] = []
        anchors = [o for o in scene.objects if o is not target]
        rng.shuffle(anchors)
        for anchor in anchors:
            anchor_matches = [
                o
                for o in scene.objects
                if o.category == anchor.category and o.color == anchor.color
            ]
            if len(anchor_matches) != 1:
                continue
            relation = relation_between(target, anchor)
            results.append(
                Constraints(
                    category=target.category,
                    relation=relation,
                    anchor_category=anchor.category,
                    anchor_color=anchor.color,
                )
            )
            results.append(
                Constraints(
                    category=target.category,
                    color=target.color,
                    relation=relation,
                    anchor_category=anchor.category,
                    anchor_color=anchor.color,
                )
            )
        return results

    def _find_unique_constraints(self, scene: Scene, target: SceneObject,
                                 rng: np.random.Generator) -> Optional[Constraints]:
        options = self._candidate_constraints(scene, target, rng)
        unique = [c for c in options if self._denotes(scene, c, target)]
        if not unique:
            return None
        # Prefer simpler references but keep variety: sample among the
        # simplest two complexity levels present.
        unique.sort(key=self._complexity)
        simplest = self._complexity(unique[0])
        pool = [c for c in unique if self._complexity(c) <= simplest + 1]
        return pool[int(rng.integers(0, len(pool)))]

    @staticmethod
    def _denotes(scene: Scene, constraints: Constraints, target: SceneObject) -> bool:
        resolved = constraints.resolve(scene)
        return len(resolved) == 1 and resolved[0] is target

    @staticmethod
    def _complexity(constraints: Constraints) -> int:
        return sum(
            attr is not None
            for attr in (
                constraints.color,
                constraints.size,
                constraints.location,
                constraints.relation,
            )
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _render(self, c: Constraints, rng: np.random.Generator) -> str:
        if self.flavor == "refcocog":
            return self._render_long(c, rng)
        return self._render_short(c, rng)

    def _render_short(self, c: Constraints, rng: np.random.Generator) -> str:
        words: List[str] = []
        if c.size:
            words.append(str(rng.choice(SIZE_WORDS[c.size])))
        if c.color:
            words.append(c.color)
        noun = c.category
        if c.location:
            if rng.random() < 0.5:
                return " ".join([c.location] + words + [noun])
            return " ".join(words + [noun, "on", "the", c.location])
        return " ".join(words + [noun])

    def _render_long(self, c: Constraints, rng: np.random.Generator) -> str:
        head_words: List[str] = ["the"]
        if c.size:
            head_words.append(str(rng.choice(SIZE_WORDS[c.size])))
        if c.color:
            head_words.append(c.color)
        head_words.append(c.category)
        head = " ".join(head_words)

        if c.relation is not None:
            anchor = f"the {c.anchor_color} {c.anchor_category}"
            relation_phrase = {
                "left of": "to the left of",
                "right of": "to the right of",
                "above": "above",
                "below": "below",
                "next to": "next to",
            }[c.relation]
            templates = (
                f"{head} that is {relation_phrase} {anchor}",
                f"{head} standing {relation_phrase} {anchor} in the picture",
                f"{head} which is {relation_phrase} {anchor}",
            )
            return str(rng.choice(templates))

        if c.location is not None:
            templates = (
                f"{head} on the {c.location} side of the picture",
                f"{head} that is on the {c.location} of the image",
            )
            return str(rng.choice(templates))

        templates = (
            f"{head} in the picture",
            f"{head} that is shown in the image",
            f"there is {head} in the scene",
        )
        return str(rng.choice(templates))
