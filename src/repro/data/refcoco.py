"""Dataset assembly: synthetic RefCOCO / RefCOCO+ / RefCOCOg.

Each dataset is a collection of :class:`GroundingSample` records split
into ``train`` / ``val`` / ``testA`` / ``testB`` (RefCOCOg has only
``train`` / ``val``, as in the paper).  testA scenes contain multiple
persons with person targets; testB scenes contain no persons — matching
the split construction of Yu et al. (2016).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.expressions import ExpressionGenerator
from repro.data.render import render_scene
from repro.data.scenes import PERSON_CATEGORY, Scene, SceneGenerator, SceneObject
from repro.text.tokenizer import tokenize
from repro.text.vocab import Vocabulary
from repro.utils.seeding import spawn_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Configuration of one synthetic grounding dataset.

    ``scenes_per_split`` maps split names to scene counts; the number of
    samples is roughly ``queries_per_scene`` times larger.
    """

    name: str
    flavor: str  # "refcoco" | "refcoco+" | "refcocog"
    image_height: int = 48
    image_width: int = 72
    same_type_density: float = 3.9
    distinct_colors: bool = False
    queries_per_scene: int = 2
    scenes_per_split: Dict[str, int] = field(
        default_factory=lambda: {"train": 120, "val": 25, "testA": 25, "testB": 25}
    )
    seed_tag: str = ""

    def scaled(self, factor: float) -> "DatasetSpec":
        """Return a copy with every split's scene count scaled by ``factor``."""
        splits = {k: max(2, int(round(v * factor))) for k, v in self.scenes_per_split.items()}
        return DatasetSpec(
            name=self.name,
            flavor=self.flavor,
            image_height=self.image_height,
            image_width=self.image_width,
            same_type_density=self.same_type_density,
            distinct_colors=self.distinct_colors,
            queries_per_scene=self.queries_per_scene,
            scenes_per_split=splits,
            seed_tag=self.seed_tag,
        )


#: Default specs mirroring the three benchmark datasets.
REFCOCO = DatasetSpec(name="RefCOCO", flavor="refcoco", same_type_density=3.9)
REFCOCO_PLUS = DatasetSpec(
    name="RefCOCO+", flavor="refcoco+", same_type_density=3.9, distinct_colors=True
)
REFCOCOG = DatasetSpec(
    name="RefCOCOg",
    flavor="refcocog",
    same_type_density=1.6,
    scenes_per_split={"train": 120, "val": 25},
)


@dataclass
class GroundingSample:
    """One (image, query, target box) triple."""

    image: np.ndarray  # (3, H, W) float
    query: str
    tokens: List[str]
    target_box: np.ndarray  # (4,) x1, y1, x2, y2
    target_index: int
    scene: Scene
    split: str


class GroundingDataset:
    """A built dataset: samples per split plus a shared vocabulary."""

    def __init__(self, spec: DatasetSpec, splits: Dict[str, List[GroundingSample]],
                 vocab: Vocabulary, max_query_length: int):
        self.spec = spec
        self.splits = splits
        self.vocab = vocab
        self.max_query_length = max_query_length

    @property
    def name(self) -> str:
        return self.spec.name

    def __getitem__(self, split: str) -> List[GroundingSample]:
        return self.splits[split]

    def split_names(self) -> List[str]:
        return list(self.splits)

    def num_samples(self) -> int:
        return sum(len(samples) for samples in self.splits.values())

    def all_samples(self) -> List[GroundingSample]:
        result: List[GroundingSample] = []
        for samples in self.splits.values():
            result.extend(samples)
        return result


def _split_person_policy(spec: DatasetSpec, split: str) -> Optional[bool]:
    """testA forces multi-person scenes, testB excludes persons."""
    if split == "testA":
        return True
    if split == "testB":
        return False
    return None


def build_dataset(spec: DatasetSpec, vocab: Optional[Vocabulary] = None) -> GroundingDataset:
    """Generate a complete dataset from a spec.

    When ``vocab`` is None a fresh vocabulary is built from all generated
    queries; pass a shared vocabulary for cross-dataset experiments so
    token ids line up (Table 2's generalisation rows).
    """
    rng = spawn_rng(f"dataset-{spec.name}-{spec.seed_tag}")
    scene_gen = SceneGenerator(
        height=spec.image_height,
        width=spec.image_width,
        same_type_density=spec.same_type_density,
        distinct_colors=spec.distinct_colors,
        rng=rng,
    )
    expr_gen = ExpressionGenerator(spec.flavor, rng=rng)

    splits: Dict[str, List[GroundingSample]] = {}
    for split, num_scenes in spec.scenes_per_split.items():
        samples: List[GroundingSample] = []
        person_policy = _split_person_policy(spec, split)
        guard = 0
        while len(samples) < num_scenes * spec.queries_per_scene:
            guard += 1
            if guard > num_scenes * 50:
                raise RuntimeError(
                    f"dataset generation stalled for {spec.name}/{split}; "
                    "the grammar cannot uniquely describe enough targets"
                )
            scene = scene_gen.generate(require_person=person_policy, rng=rng)
            image = render_scene(scene, rng=rng)
            produced = _samples_from_scene(
                scene, image, expr_gen, spec, split, person_policy, rng
            )
            samples.extend(produced)
        splits[split] = samples[: num_scenes * spec.queries_per_scene]

    if vocab is None:
        vocab = Vocabulary.from_corpus(
            sample.tokens for samples in splits.values() for sample in samples
        )
    max_len = max(
        len(sample.tokens) for samples in splits.values() for sample in samples
    )
    return GroundingDataset(spec, splits, vocab, max_query_length=max_len)


def _samples_from_scene(
    scene: Scene,
    image: np.ndarray,
    expr_gen: ExpressionGenerator,
    spec: DatasetSpec,
    split: str,
    person_policy: Optional[bool],
    rng: np.random.Generator,
) -> List[GroundingSample]:
    """Draw up to ``queries_per_scene`` uniquely-describable targets."""
    candidates = list(range(len(scene.objects)))
    if person_policy is True:
        candidates = [
            i for i in candidates if scene.objects[i].category == PERSON_CATEGORY
        ]
    rng.shuffle(candidates)
    samples: List[GroundingSample] = []
    for index in candidates:
        if len(samples) >= spec.queries_per_scene:
            break
        target = scene.objects[index]
        query = expr_gen.generate(scene, target, rng=rng)
        if query is None:
            continue
        samples.append(
            GroundingSample(
                image=image,
                query=query,
                tokens=tokenize(query),
                target_box=target.box.copy(),
                target_index=index,
                scene=scene,
                split=split,
            )
        )
    return samples


def dataset_statistics(dataset: GroundingDataset) -> Dict[str, object]:
    """Table-1-style statistics for a built dataset.

    Besides the aggregate counts, reports the query-type mix (scenario
    datasets emit ``multi`` / ``no_target`` / ``weak_pair`` samples in
    addition to the classic ``single``; plain datasets are 100%
    ``single``) and, per split, the expression-length histogram and
    that split's own query-type mix — nested under ``"splits"``.
    """
    samples = dataset.all_samples()
    scenes = {id(s.scene): s.scene for s in samples}
    query_lengths = [len(s.tokens) for s in samples]
    same_type_counts = []
    for sample in samples:
        # Scenario samples without a unique referent (multi/no-target/
        # weak pairs) have no target object to count distractors for.
        if sample.scene is None or sample.target_index < 0:
            continue
        same_type_counts.append(len(sample.scene.same_category(sample.scene.objects[sample.target_index])))
    stats: Dict[str, float] = {
        "images": len(scenes),
        "queries": len(samples),
        "targets": len({(id(s.scene), s.target_index) for s in samples
                        if s.target_index >= 0}),
        "avg_query_length": float(np.mean(query_lengths)),
        "avg_same_type": (float(np.mean(same_type_counts))
                          if same_type_counts else 0.0),
        "vocab_size": len(dataset.vocab),
    }
    stats["query_type_mix"] = _query_type_mix(samples)
    stats["splits"] = {
        split: {
            "queries": len(split_samples),
            "query_type_mix": _query_type_mix(split_samples),
            "query_length_histogram": _length_histogram(split_samples),
            "clause_depth_histogram": _clause_depth_histogram(split_samples),
        }
        for split, split_samples in dataset.splits.items()
    }
    return stats


def _query_type_mix(samples: Sequence[GroundingSample]) -> Dict[str, float]:
    """Fraction of each query type (plain samples count as ``single``)."""
    if not samples:
        return {}
    counts: Dict[str, int] = {}
    for sample in samples:
        kind = getattr(sample, "query_type", "single")
        counts[kind] = counts.get(kind, 0) + 1
    return {kind: count / len(samples)
            for kind, count in sorted(counts.items())}


def _length_histogram(samples: Sequence[GroundingSample]) -> Dict[int, int]:
    """Token-count histogram: expression length -> number of queries."""
    if not samples:
        return {}
    lengths, counts = np.unique(
        [len(s.tokens) for s in samples], return_counts=True)
    return {int(length): int(count)
            for length, count in zip(lengths, counts)}


def _clause_depth_histogram(
    samples: Sequence[GroundingSample],
) -> Dict[int, int]:
    """Parse-depth histogram: relation-chain depth -> number of queries.

    Depth 0 covers bare attribute references (and unparseable queries,
    whose trivial trees have no clauses); depth 1 a single relational
    clause; 2+ nested chains.  Lazy import keeps :mod:`repro.data`
    importable without pulling the parser in for plain datasets.
    """
    if not samples:
        return {}
    from repro.lang import parse

    depths, counts = np.unique(
        [parse(s.query).depth() for s in samples], return_counts=True)
    return {int(depth): int(count)
            for depth, count in zip(depths, counts)}
