"""repro.zoo: config-driven model registry.

Named presets — flat ``YolloConfig`` override dicts spanning the
pluggable component axes (context encoder, fusion stack, anchor
matcher, classification loss) — validated and lowered into model
builders.  See :mod:`repro.zoo.registry` for the lookup API and
:mod:`repro.zoo.presets` for the built-in entries (imported here so
the registry is populated on ``import repro.zoo``).
"""

from repro.zoo.registry import (
    ModelPreset,
    UnknownPresetError,
    available_presets,
    build_model,
    build_preset_grounder,
    get_preset,
    lower_config,
    preset_fingerprint,
    register_preset,
)
from repro.zoo import presets as _presets  # noqa: F401 (populates registry)

__all__ = [
    "ModelPreset",
    "UnknownPresetError",
    "available_presets",
    "build_model",
    "build_preset_grounder",
    "get_preset",
    "lower_config",
    "preset_fingerprint",
    "register_preset",
]
