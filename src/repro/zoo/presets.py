"""Built-in model presets.

Two tiers share the same variant axes.  The ``fast`` tier runs the tiny
backbone at reduced widths — small enough that tier-1 tests can build,
train a step, and compile every one — and covers each new pluggable
component in isolation so a regression bisects to one axis.  The
``full`` tier runs the paper-scale configuration (ResNet-50 trunk,
default widths) plus the combinations the zoo benchmark compares.
"""

from __future__ import annotations

from repro.zoo.registry import ModelPreset, register_preset

#: Shared reduced widths for the fast tier.
_FAST = {
    "backbone": "tiny",
    "d_model": 16,
    "d_rel": 16,
    "num_rel2att": 2,
    "ffn_hidden": 16,
    "head_hidden": 16,
}


register_preset(ModelPreset(
    name="tiny",
    description="Fast-tier baseline: paper wiring at reduced widths "
                "(Rel2Att fusion, IoU matcher, softmax CE).",
    config=dict(_FAST),
))

register_preset(ModelPreset(
    name="tiny-dilated",
    description="Fast tier + YOLOF-style dilated context encoder "
                "between the trunk and the flatten.",
    config={**_FAST, "context_encoder": "dilated",
            "encoder_dilations": (1, 2)},
))

register_preset(ModelPreset(
    name="tiny-word2pix",
    description="Fast tier with Word2Pix word-to-pixel cross-attention "
                "fusion instead of the Rel2Att relation map.",
    config={**_FAST, "fusion": "word2pix"},
))

register_preset(ModelPreset(
    name="tiny-topk",
    description="Fast tier with YOLOF uniform top-k anchor matching "
                "instead of rho_high/rho_low IoU thresholds.",
    config={**_FAST, "matcher": "topk", "topk_candidates": 4},
))

register_preset(ModelPreset(
    name="tiny-focal",
    description="Fast tier with sigmoid focal classification loss "
                "instead of 2-way softmax cross-entropy.",
    config={**_FAST, "cls_loss": "focal",
            "focal_alpha": 0.25, "focal_gamma": 2.0},
))

register_preset(ModelPreset(
    name="yollo",
    description="Paper configuration: ResNet-50 trunk, Rel2Att fusion, "
                "IoU matching, softmax CE (all defaults).",
    config={},
    tier="full",
))

register_preset(ModelPreset(
    name="yollo-dilated-focal",
    description="Paper scale + dilated context encoder + uniform top-k "
                "matching + focal loss (the YOLOF-flavoured variant).",
    config={"context_encoder": "dilated", "encoder_dilations": (1, 2, 3),
            "matcher": "topk", "topk_candidates": 4, "cls_loss": "focal"},
    tier="full",
))

register_preset(ModelPreset(
    name="yollo-word2pix",
    description="Paper scale with Word2Pix word-to-pixel fusion.",
    config={"fusion": "word2pix"},
    tier="full",
))
