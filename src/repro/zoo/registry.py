"""Model zoo registry: named presets lowered into ``YolloConfig``.

A *preset* is a named flat config dict — overrides over the
``YolloConfig`` defaults, in the spirit of detection-lab config files —
registered here at import time (importing :mod:`repro.zoo` pulls in the
built-in presets), so every harness that builds a model (the training
CLI, the experiment context, the serving fleet, the zoo benchmark)
enumerates variants by name instead of hard-coding constructor calls.

Lowering (:func:`lower_config`) normalises the flat dict (YAML-ish
lists become the tuples the dataclass expects) and validates it through
:meth:`YolloConfig.with_overrides`, so a typo'd key fails with the full
field list at *registration* time, not deep inside a fleet replica.
Each preset also has a stable :func:`preset_fingerprint` — the
checkpoint fingerprint of the lowered config plus the preset name —
used to key checkpoints and the fleet's shared response cache, so two
presets can never pass off weights or responses as each other's.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.config import YolloConfig
from repro.runtime.checkpoint import config_fingerprint

#: Preset tiers: ``fast`` presets are small enough for tier-1 tests;
#: ``full`` presets are paper-scale and only run under ``-m slow``.
TIERS = ("fast", "full")


@dataclass(frozen=True)
class ModelPreset:
    """One registered model variant.

    ``config`` is a flat mapping of ``YolloConfig`` field overrides;
    everything not named keeps the dataclass default.  ``tier`` gates
    how expensive harnesses treat the preset (see :data:`TIERS`).
    """

    name: str
    description: str
    config: Mapping[str, object] = field(default_factory=dict)
    tier: str = "fast"


class UnknownPresetError(KeyError):
    """Lookup of a preset name that is not in the registry."""

    def __init__(self, name: str, available: Sequence[str]):
        self.name = name
        self.available = tuple(available)
        super().__init__(
            f"unknown model preset {name!r}; available: "
            f"{', '.join(available) or '(none registered)'}")

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


_PRESETS: Dict[str, ModelPreset] = {}


def register_preset(preset: ModelPreset) -> ModelPreset:
    """Add a preset to the registry (idempotent per name).

    The config is lowered once here so a bad registration — unknown
    field, invalid tier — fails at import time with a full error.
    """
    if preset.tier not in TIERS:
        raise ValueError(
            f"unknown tier {preset.tier!r}; valid tiers: {', '.join(TIERS)}")
    lower_config(preset)  # fail fast on unknown fields
    _PRESETS[preset.name] = preset
    return preset


def available_presets(tier: Optional[str] = None) -> List[str]:
    if tier is None:
        return list(_PRESETS)
    return [name for name, preset in _PRESETS.items() if preset.tier == tier]


def get_preset(name: str) -> ModelPreset:
    try:
        return _PRESETS[name]
    except KeyError:
        raise UnknownPresetError(name, available_presets()) from None


def _resolve(preset: Union[str, ModelPreset]) -> ModelPreset:
    if isinstance(preset, ModelPreset):
        return preset
    return get_preset(preset)


def _normalise(value: object) -> object:
    """Flat-dict values -> dataclass field types (lists become tuples)."""
    if isinstance(value, (list, tuple)):
        return tuple(_normalise(item) for item in value)
    return value


def lower_config(preset: Union[str, ModelPreset],
                 **extra_overrides: object) -> YolloConfig:
    """Lower a preset's flat dict into a validated ``YolloConfig``.

    ``extra_overrides`` are applied on top of the preset (harnesses use
    this for dataset-dependent fields like ``max_query_length``); both
    layers go through :meth:`YolloConfig.with_overrides`, so unknown
    keys raise :class:`~repro.core.UnknownConfigFieldError` listing the
    valid field names.
    """
    preset = _resolve(preset)
    normalised = {key: _normalise(value)
                  for key, value in dict(preset.config).items()}
    config = YolloConfig().with_overrides(**normalised)
    if extra_overrides:
        config = config.with_overrides(**extra_overrides)
    return config


def preset_fingerprint(preset: Union[str, ModelPreset],
                       **extra_overrides: object) -> str:
    """Config fingerprint for checkpoints/caches built from a preset.

    Hashes the preset *name* together with every lowered field, so two
    presets that happen to lower identically still fingerprint apart
    (their weights trained under different names must not be swapped),
    and any config drift within a preset changes the fingerprint.
    """
    preset = _resolve(preset)
    config = lower_config(preset, **extra_overrides)
    return config_fingerprint({"preset": preset.name, **asdict(config)})


def build_model(preset: Union[str, ModelPreset], vocab_size: int,
                pretrained_embeddings: Optional[np.ndarray] = None,
                backbone=None, **extra_overrides: object):
    """Instantiate a :class:`~repro.core.YolloModel` from a preset."""
    from repro.core import YolloModel

    config = lower_config(preset, **extra_overrides)
    return YolloModel(config, vocab_size,
                      pretrained_embeddings=pretrained_embeddings,
                      backbone=backbone)


def build_preset_grounder(preset: str = "tiny",
                          dataset_name: str = "RefCOCO", scale: float = 0.1,
                          pretrain_steps: int = 1,
                          model_path: Optional[str] = None,
                          compiled: bool = False, top_k: int = 5,
                          not_found_threshold: float = 0.0):
    """Reconstruct a preset's ranked grounder inside a replica process.

    The zoo analogue of :func:`repro.serve.replica.build_yollo_grounder`:
    module-level and kwarg-picklable so it works as a ``ReplicaSpec``
    builder under ``spawn``.  Replicas are seeded before this runs, so
    every replica built from the *same preset and seed* initialises
    bit-identical weights — the property the heterogeneous-fleet soak
    leans on when it compares fleet responses against a single-engine
    reference built the same way in the parent.
    """
    from repro.backbone import load_pretrained_backbone
    from repro.core import Grounder
    from repro.data import REFCOCO, REFCOCO_PLUS, REFCOCOG, build_dataset

    spec = {"RefCOCO": REFCOCO, "RefCOCO+": REFCOCO_PLUS,
            "RefCOCOg": REFCOCOG}[dataset_name]
    dataset = build_dataset(spec.scaled(scale))
    config = lower_config(
        preset, max_query_length=max(8, dataset.max_query_length))
    net = load_pretrained_backbone(config.backbone, steps=pretrain_steps)
    from repro.core import YolloModel

    model = YolloModel(config, vocab_size=len(dataset.vocab), backbone=net)
    if model_path:
        model.load(model_path)
    model.eval()
    grounder = Grounder(model, dataset.vocab)
    if compiled:
        grounder.compile()
    return grounder.ranked(top_k=top_k,
                           not_found_threshold=not_found_threshold)
