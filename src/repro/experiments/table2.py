"""Table 2 — overall ACC@0.5 comparison plus cross-dataset generalisation.

Rows: two-stage baselines (listener, speaker with MMI, their ensemble)
and YOLLO, evaluated on every split of every dataset; then YOLLO models
trained on one dataset and evaluated on the others (the generalisation
block of the paper's Table 2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.eval import format_table
from repro.experiments.context import DATASET_NAMES, ExperimentContext

BASELINE_KINDS = ("listener", "speaker", "speaker+listener")

#: (dataset, split) columns in the paper's order.
COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("RefCOCO", "val"),
    ("RefCOCO", "testA"),
    ("RefCOCO", "testB"),
    ("RefCOCO+", "val"),
    ("RefCOCO+", "testA"),
    ("RefCOCO+", "testB"),
    ("RefCOCOg", "val"),
)


def collect(context: ExperimentContext) -> Dict[str, Dict[Tuple[str, str], float]]:
    """ACC@0.5 for every row model on every column split."""
    results: Dict[str, Dict[Tuple[str, str], float]] = {}

    for kind in BASELINE_KINDS:
        row: Dict[Tuple[str, str], float] = {}
        for dataset_name, split in COLUMNS:
            grounder = context.baseline(kind, dataset_name)
            report = context.evaluate(
                grounder, f"baseline-{kind}", dataset_name, split
            )
            row[(dataset_name, split)] = report.acc_at_50 * 100
        results[kind] = row

    # YOLLO trained per dataset, evaluated in-domain...
    in_domain: Dict[Tuple[str, str], float] = {}
    for train_name in DATASET_NAMES:
        _, grounder, _ = context.yollo(train_name)
        for dataset_name, split in COLUMNS:
            report = context.evaluate(
                grounder, f"yollo-{train_name}", dataset_name, split
            )
            value = report.acc_at_50 * 100
            # ...and cross-domain (generalisation rows).
            results.setdefault(f"YOLLO (trained on {train_name})", {})[
                (dataset_name, split)
            ] = value
            if dataset_name == train_name:
                in_domain[(dataset_name, split)] = value
    results["YOLLO"] = in_domain
    return results


def run(context: ExperimentContext) -> str:
    """Render the Table-2 report."""
    results = collect(context)
    headers = ["Method"] + [f"{d}/{s}" for d, s in COLUMNS]
    order = list(BASELINE_KINDS) + ["YOLLO"] + [
        f"YOLLO (trained on {name})" for name in DATASET_NAMES
    ]
    rows: List[List[object]] = []
    for method in order:
        row: List[object] = [method]
        for column in COLUMNS:
            value = results.get(method, {}).get(column)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(
        headers, rows,
        title="Table 2: ACC@0.5 (%) on RefCOCO / RefCOCO+ / RefCOCOg",
    )
