"""Scenario workload matrix — ranked grounding quality per scenario.

For every registered scenario this renders two reference rows through
the structured-response metrics (:func:`~repro.eval.recall_at_k`,
:func:`~repro.eval.no_target_report`):

* ``oracle`` — the ground-truth answer table served back verbatim, the
  upper bound every metric should saturate (and a self-check that the
  scenario's answers are consistent with its own samples);
* ``largest-first`` — a no-learning baseline that ranks every object in
  the scene by area and never says "not found": recall@k shows how far
  blind ranking gets, and the no-target columns are zero by
  construction — the gap the calibrated ``not_found`` decision exists
  to close.

The ``weak`` scenario additionally trains its contrastive two-tower
model on the pairing-only split and reports pointing-game accuracy —
grounding quality with zero box supervision.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.eval import (
    format_table,
    no_target_report,
    recall_at_k,
    recall_by_clause_depth,
)
from repro.experiments.context import ExperimentContext
from repro.scenarios import (
    ScenarioSample,
    available_scenarios,
    ranked_answer,
)


def _largest_first_ranking(sample: ScenarioSample,
                           top_k: int = 5) -> np.ndarray:
    """Rank the scene's object boxes by area, largest first."""
    if sample.scene is None or not sample.scene.objects:
        return np.empty((0, 4))
    boxes = sample.scene.boxes()
    areas = (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])
    return boxes[np.argsort(-areas)][:top_k]


def score_rows(samples: Sequence[ScenarioSample]) -> Dict[str, Dict[str, float]]:
    """Oracle and largest-first metric rows over one scenario's eval split."""
    targets = [np.asarray(s.all_target_boxes).reshape(-1, 4)
               for s in samples]
    actual_no_target = [s.is_no_target for s in samples]

    oracle_boxes, oracle_not_found = [], []
    for sample in samples:
        boxes, _, not_found = ranked_answer(sample)
        oracle_boxes.append(boxes)
        oracle_not_found.append(not_found)

    baseline_boxes = [_largest_first_ranking(s) for s in samples]
    baseline_not_found = [False] * len(samples)

    def row(ranked, predicted_not_found) -> Dict[str, float]:
        report = no_target_report(predicted_not_found, actual_no_target)
        return {
            "recall@1": recall_at_k(ranked, targets, k=1),
            "recall@5": recall_at_k(ranked, targets, k=5),
            "nt_precision": report.precision,
            "nt_recall": report.recall,
            "nt_f1": report.f1,
        }

    return {
        "oracle": row(oracle_boxes, oracle_not_found),
        "largest-first": row(baseline_boxes, baseline_not_found),
    }


def depth_rows(samples: Sequence[ScenarioSample],
               ) -> Dict[str, Dict[int, float]]:
    """Per-clause-depth recall@1 for the oracle and baseline rows.

    The depth breakdown of Table 2b: compositional queries are grouped
    by their parse tree's relation-chain depth, so the table shows how
    accuracy degrades as relational nesting grows.
    """
    queries = [s.query for s in samples]
    targets = [np.asarray(s.all_target_boxes).reshape(-1, 4)
               for s in samples]
    oracle_boxes = [ranked_answer(s)[0] for s in samples]
    baseline_boxes = [_largest_first_ranking(s) for s in samples]
    return {
        "oracle": recall_by_clause_depth(oracle_boxes, targets, queries),
        "largest-first": recall_by_clause_depth(baseline_boxes, targets,
                                                queries),
    }


def collect(context: ExperimentContext) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Metric rows for every registered scenario."""
    return {
        name: score_rows(context.scenario_dataset(name)["eval"])
        for name in available_scenarios()
    }


def weak_pointing_row(context: ExperimentContext) -> Dict[str, float]:
    """Train the weak contrastive model and score the pointing game."""
    from repro.scenarios import pointing_accuracy, train_weak_model

    dataset = context.scenario_dataset("weak")
    with context._unit_seed("scenario-weak-train"):
        result = train_weak_model(
            dataset["train"], dataset.vocab,
            steps=max(20, context.preset.baseline_steps // 10))
        accuracy = pointing_accuracy(
            result["model"], dataset["eval"], dataset.vocab,
            result["max_length"])
    return {
        "pointing_accuracy": accuracy,
        "final_loss": result["losses"][-1],
        "first_loss": result["losses"][0],
    }


def run(context: ExperimentContext) -> str:
    """Render the scenario matrix report."""
    rows: List[List[object]] = []
    for name, by_grounder in collect(context).items():
        for grounder_name, metrics in by_grounder.items():
            rows.append([
                f"{name}/{grounder_name}",
                metrics["recall@1"],
                metrics["recall@5"],
                metrics["nt_precision"],
                metrics["nt_recall"],
                metrics["nt_f1"],
            ])
    matrix = format_table(
        ["Scenario/grounder", "R@1", "R@5",
         "NT-prec", "NT-rec", "NT-F1"],
        rows,
        title="Table 2b: scenario workload matrix (ranked answers)",
    )
    depth_table = _depth_breakdown_table(
        context.scenario_dataset("compositional")["eval"])
    weak = weak_pointing_row(context)
    weak_table = format_table(
        ["Weak supervision", "pointing acc", "loss start", "loss end"],
        [["contrastive two-tower", weak["pointing_accuracy"],
          weak["first_loss"], weak["final_loss"]]],
        title="Weak scenario: pointing game (no boxes at train time)",
    )
    return matrix + "\n\n" + depth_table + "\n\n" + weak_table


def _depth_breakdown_table(samples: Sequence[ScenarioSample]) -> str:
    """Render the per-clause-depth recall@1 rows for one sample set."""
    breakdown = depth_rows(samples)
    depths = sorted({depth for per_grounder in breakdown.values()
                     for depth in per_grounder})
    rows = [
        [grounder_name] + [per_depth.get(depth, float("nan"))
                           for depth in depths]
        for grounder_name, per_depth in breakdown.items()
    ]
    return format_table(
        ["Grounder"] + [f"R@1 depth={depth}" for depth in depths],
        rows,
        title="Table 2b (cont.): compositional recall by clause depth",
    )


def run_scenario(context: ExperimentContext, name: str) -> str:
    """Standalone report for one scenario (``experiments --scenario``)."""
    from repro.data import dataset_statistics

    dataset = context.scenario_dataset(name)
    stats = dataset_statistics(dataset)
    lines = [f"scenario {name}: {int(stats['queries'])} queries over "
             f"{int(stats['images'])} images, "
             f"avg length {stats['avg_query_length']:.1f} tokens"]
    mix = stats["query_type_mix"]
    lines.append("query mix: " + ", ".join(
        f"{kind}={fraction:.0%}" for kind, fraction in mix.items()))
    depth_hist = stats["splits"]["eval"]["clause_depth_histogram"]
    lines.append("clause depth: " + ", ".join(
        f"depth {depth}: {count}" for depth, count in depth_hist.items()))
    rows = [
        [grounder_name, metrics["recall@1"], metrics["recall@5"],
         metrics["nt_precision"], metrics["nt_recall"], metrics["nt_f1"]]
        for grounder_name, metrics in score_rows(dataset["eval"]).items()
    ]
    lines.append(format_table(
        ["Grounder", "R@1", "R@5", "NT-prec", "NT-rec", "NT-F1"], rows))
    if name == "compositional":
        lines.append(_depth_breakdown_table(dataset["eval"]))
    if name == "weak":
        weak = weak_pointing_row(context)
        lines.append(
            f"contrastive pointing accuracy: "
            f"{weak['pointing_accuracy']:.2f} "
            f"(loss {weak['first_loss']:.3f} -> {weak['final_loss']:.3f})")
    return "\n".join(lines)
