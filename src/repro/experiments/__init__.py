"""Experiment harness: one module per table/figure of the paper.

``ExperimentContext`` owns datasets, trained models and caching; each
``tableN``/``figureN`` module exposes ``run(context)`` returning the
formatted rows the paper reports.  The active preset (SMOKE / BENCH /
FULL) is selected with the ``REPRO_PRESET`` environment variable.
"""

from repro.experiments.config import ExperimentPreset, PRESETS, get_preset
from repro.experiments.context import ExperimentContext
from repro.experiments import table1, table2, table3, table4, table5
from repro.experiments import figure4, figure5
from repro.experiments import scenario_matrix

__all__ = [
    "ExperimentPreset",
    "PRESETS",
    "get_preset",
    "ExperimentContext",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure4",
    "figure5",
    "scenario_matrix",
]
