"""Experiment presets: how much compute each harness run spends."""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentPreset:
    """Scale knobs for the experiment harness.

    ``train_scenes``/``eval_scenes`` size the generated datasets (x2
    queries per scene); the remaining fields budget each training run.
    """

    name: str
    train_scenes: int = 250
    eval_scenes: int = 16
    pretrain_steps: int = 600
    yollo_epochs: int = 8
    ablation_epochs: int = 5
    baseline_steps: int = 300
    eval_limit: int = 32  #: max samples evaluated per split
    timing_samples: int = 8
    eval_every: int = 50  #: iterations between Figure-4 curve points
    use_float32: bool = True


PRESETS = {
    # Fast enough for CI smoke tests; numbers are meaningless.
    "smoke": ExperimentPreset(
        name="smoke",
        train_scenes=12,
        eval_scenes=4,
        pretrain_steps=20,
        yollo_epochs=1,
        ablation_epochs=1,
        baseline_steps=20,
        eval_limit=8,
        timing_samples=3,
        eval_every=2,
    ),
    # Default for `pytest benchmarks/`: the paper's qualitative shape
    # emerges in ~40 minutes of single-core CPU (cached thereafter).
    "bench": ExperimentPreset(name="bench", yollo_epochs=20, ablation_epochs=8),
    # Overnight-quality numbers (the EXPERIMENTS.md configuration).
    "full": ExperimentPreset(
        name="full",
        train_scenes=600,
        eval_scenes=40,
        pretrain_steps=900,
        yollo_epochs=25,
        ablation_epochs=12,
        baseline_steps=800,
        eval_limit=80,
        timing_samples=16,
        eval_every=100,
    ),
}


def get_preset(name: str = None) -> ExperimentPreset:
    """Resolve a preset by name or the ``REPRO_PRESET`` env variable."""
    name = name or os.environ.get("REPRO_PRESET", "bench")
    if name not in PRESETS:
        raise KeyError(f"unknown preset '{name}'; choose from {sorted(PRESETS)}")
    return PRESETS[name]
