"""Figure 4 — training curves (val ACC@0.5 vs iteration) on all datasets.

The curves are recorded during the Table-2 training runs, so this module
costs nothing extra; the report includes the convergence iteration that
backs the paper's "converges within 5000 iterations" claim (rescaled to
our budget).
"""

from __future__ import annotations

from typing import Dict, List

from repro.eval import TrainingCurve, format_table
from repro.experiments.context import DATASET_NAMES, ExperimentContext


def collect(context: ExperimentContext) -> Dict[str, TrainingCurve]:
    """The recorded curve per dataset."""
    curves: Dict[str, TrainingCurve] = {}
    for dataset_name in DATASET_NAMES:
        _, _, curve = context.yollo(dataset_name)
        curves[dataset_name] = curve
    return curves


def run(context: ExperimentContext) -> str:
    """Render Figure 4 as ASCII plots plus a convergence summary."""
    curves = collect(context)
    parts: List[str] = ["Figure 4: training curves (val ACC@0.5 vs iteration)"]
    rows: List[List[object]] = []
    for dataset_name, curve in curves.items():
        parts.append("")
        parts.append(curve.render_ascii())
        rows.append(
            [
                dataset_name,
                curve.final() * 100,
                curve.best() * 100,
                curve.convergence_iteration(),
            ]
        )
    parts.append("")
    parts.append(
        format_table(
            ["Dataset", "final ACC@0.5", "best ACC@0.5", "95%-of-best iter"],
            rows,
        )
    )
    return "\n".join(parts)
