"""Table 3 — YOLLO under ACC / ACC@0.5 / ACC@0.75 / MIoU.

Evaluates each in-domain YOLLO model under the full metric sweep,
reproducing the paper's observation that ACC@0.75 drops because anchors
are labelled positive at rho_high = 0.5.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.eval import format_table
from repro.experiments.context import DATASET_NAMES, ExperimentContext


def collect(context: ExperimentContext) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Metric dict per (dataset, split)."""
    results: Dict[Tuple[str, str], Dict[str, float]] = {}
    for dataset_name in DATASET_NAMES:
        _, grounder, _ = context.yollo(dataset_name)
        for split in context.eval_splits(dataset_name):
            report = context.evaluate(
                grounder, f"yollo-{dataset_name}", dataset_name, split
            )
            results[(dataset_name, split)] = {
                key: value * 100 for key, value in report.as_dict().items()
            }
    return results


def run(context: ExperimentContext) -> str:
    """Render the Table-3 report."""
    results = collect(context)
    rows: List[List[object]] = []
    for (dataset_name, split), metrics in results.items():
        rows.append(
            [
                dataset_name,
                split,
                metrics["ACC"],
                metrics["ACC@0.5"],
                metrics["ACC@0.75"],
                metrics["MIOU"],
            ]
        )
    return format_table(
        ["Dataset", "Split", "ACC", "ACC@0.5", "ACC@0.75", "MIOU"],
        rows,
        title="Table 3: YOLLO under different evaluation metrics (%)",
    )
