"""Shared experiment state: datasets, trained models, disk caching.

Training a grounding model is the expensive step, and several tables
need the same trained models, so the context trains each (model,
dataset) pair exactly once and persists weights plus training curves
under the cache directory.  Evaluation reports are cached as JSON keyed
by (model, dataset, split), making a re-run of the full benchmark suite
nearly free.
"""

from __future__ import annotations

import json
import os
import zlib
from contextlib import contextmanager
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import set_default_dtype
from repro.backbone import load_pretrained_backbone
from repro.backbone.pretrain import default_cache_dir
from repro.core import Grounder, YolloConfig, YolloModel, YolloTrainer
from repro.data import (
    GroundingDataset,
    REFCOCO,
    REFCOCO_PLUS,
    REFCOCOG,
    build_dataset,
)
from repro.eval import MetricReport, TrainingCurve, evaluate_grounder
from repro.experiments.config import ExperimentPreset, get_preset
from repro.optim import WarmupCosineLR
from repro.text import SkipGramWord2Vec, Vocabulary, build_corpus
from repro.twostage import (
    ListenerMatcher,
    SegmentationProposer,
    SpeakerScorer,
    TwoStageGrounder,
    train_listener,
    train_speaker,
)
from repro.utils.logging import ProgressLogger
from repro.utils.seeding import seed_everything, spawn_rng

DATASET_SPECS = {
    "RefCOCO": REFCOCO,
    "RefCOCO+": REFCOCO_PLUS,
    "RefCOCOg": REFCOCOG,
}

DATASET_NAMES = tuple(DATASET_SPECS)

#: A trained model whose validation curve never clears this ACC@0.5 is
#: considered degenerate (it never learned to localise at all) and its
#: unit seed is rerolled.
_DEGENERATE_ACC = 0.05
#: Training attempts per (model, dataset) unit before keeping the best.
_YOLLO_TRAIN_ATTEMPTS = 3


class ExperimentContext:
    """Lazily builds and caches everything the tables need."""

    def __init__(self, preset: Optional[ExperimentPreset] = None,
                 cache_dir: Optional[str] = None, seed: int = 7,
                 verbose: bool = True, model_preset: Optional[str] = None):
        self.preset = preset or get_preset()
        if model_preset is not None:
            from repro.zoo import get_preset as get_model_preset

            get_model_preset(model_preset)  # fail fast on unknown names
        self.model_preset = model_preset
        self.seed = seed
        self.logger = ProgressLogger("experiments", enabled=verbose)
        root = cache_dir or default_cache_dir()
        # A model preset gets its own cache namespace: trained weights,
        # curves, and eval reports are a function of the architecture.
        leaf = (self.preset.name if model_preset is None
                else f"{self.preset.name}-{model_preset}")
        self.cache_dir = os.path.join(root, "experiments", leaf)
        os.makedirs(self.cache_dir, exist_ok=True)
        if self.preset.use_float32:
            set_default_dtype(np.float32)
        seed_everything(seed)

        self._datasets: Dict[str, GroundingDataset] = {}
        self._scenario_datasets: Dict[str, GroundingDataset] = {}
        self._shared_vocab: Optional[Vocabulary] = None
        self._word2vec: Optional[np.ndarray] = None
        self._yollo: Dict[str, Tuple[YolloModel, Grounder, TrainingCurve]] = {}
        self._baselines: Dict[Tuple[str, str], TwoStageGrounder] = {}

    @contextmanager
    def _unit_seed(self, tag: str):
        """Deterministic RNG scope for one expensive unit of work.

        Each dataset build / embedding fit / model training reseeds the
        process RNG from ``(seed, tag)`` and restores the base seed on
        exit, so the produced weights depend only on the unit itself —
        not on which benchmark process happened to train first, and not
        on whether earlier units were served from the disk cache.
        """
        derived = zlib.crc32(f"{self.seed}:{tag}".encode("utf-8")) & 0x7FFFFFFF
        seed_everything(derived)
        try:
            yield
        finally:
            seed_everything(self.seed)

    # ------------------------------------------------------------------
    # Datasets and vocabulary
    # ------------------------------------------------------------------
    def _scaled_spec(self, name: str):
        spec = DATASET_SPECS[name]
        splits = {
            split: (self.preset.train_scenes if split == "train" else self.preset.eval_scenes)
            for split in spec.scenes_per_split
        }
        return replace(spec, scenes_per_split=splits)

    def dataset(self, name: str) -> GroundingDataset:
        """Build (once) the named dataset with the shared vocabulary."""
        if name not in self._datasets:
            self.logger.log(f"building dataset {name}")
            with self._unit_seed(f"dataset-{name}"):
                self._datasets[name] = build_dataset(self._scaled_spec(name))
        if self._shared_vocab is not None:
            self._datasets[name].vocab = self._shared_vocab
        return self._datasets[name]

    def scenario_dataset(self, name: str) -> GroundingDataset:
        """Build (once) a registered scenario's splits at preset scale.

        Returned as a :class:`~repro.data.GroundingDataset` (with its
        own vocabulary over the scenario's expressions) so the table
        harness and ``dataset_statistics`` treat scenario workloads
        exactly like the RefCOCO-style datasets.
        """
        from repro.data.refcoco import DatasetSpec
        from repro.scenarios import get_scenario

        scenario = get_scenario(name)  # fail fast on unknown names
        if name not in self._scenario_datasets:
            self.logger.log(f"building scenario {name}")
            with self._unit_seed(f"scenario-{name}"):
                splits = scenario.build_splits(self.preset.eval_scenes)
            vocab = Vocabulary.from_corpus(
                sample.tokens
                for samples in splits.values() for sample in samples)
            spec = DatasetSpec(
                name=f"scenario:{name}", flavor="refcoco",
                scenes_per_split={split: self.preset.eval_scenes
                                  for split in splits})
            max_len = max(len(sample.tokens)
                          for samples in splits.values()
                          for sample in samples)
            self._scenario_datasets[name] = GroundingDataset(
                spec, splits, vocab, max_query_length=max_len)
        return self._scenario_datasets[name]

    def shared_vocab(self) -> Vocabulary:
        """Union vocabulary over all datasets (cross-dataset evaluation)."""
        if self._shared_vocab is None:
            for name in DATASET_NAMES:
                self.dataset(name)
            self._shared_vocab = Vocabulary.from_corpus(
                sample.tokens
                for ds in self._datasets.values()
                for sample in ds.all_samples()
            )
            for ds in self._datasets.values():
                ds.vocab = self._shared_vocab
        return self._shared_vocab

    def max_query_length(self) -> int:
        """Padding length covering every dataset."""
        self.shared_vocab()
        return max(8, max(ds.max_query_length for ds in self._datasets.values()))

    def word2vec_matrix(self) -> np.ndarray:
        """Skip-gram embeddings over the shared vocabulary (cached)."""
        if self._word2vec is None:
            vocab = self.shared_vocab()
            path = os.path.join(self.cache_dir, "word2vec.npz")
            if os.path.exists(path):
                with np.load(path) as archive:
                    matrix = archive["embeddings"]
                if matrix.shape[0] == len(vocab):
                    self._word2vec = matrix
                    return self._word2vec
            self.logger.log("pre-training word2vec embeddings")
            with self._unit_seed("word2vec"):
                corpus = build_corpus(400, rng=spawn_rng("experiments-corpus"))
                model = SkipGramWord2Vec(vocab, dim=24)
                model.train(corpus, epochs=2)
            self._word2vec = model.embedding_matrix()
            np.savez(path, embeddings=self._word2vec)
        return self._word2vec

    # ------------------------------------------------------------------
    # YOLLO models
    # ------------------------------------------------------------------
    def yollo_config(self, **overrides) -> YolloConfig:
        if self.model_preset is not None:
            from repro.zoo import lower_config

            base = lower_config(self.model_preset,
                                max_query_length=self.max_query_length())
        else:
            base = YolloConfig(max_query_length=self.max_query_length())
        return base.with_overrides(**overrides) if overrides else base

    def yollo(self, dataset_name: str, tag: str = "main",
              epochs: Optional[int] = None,
              **config_overrides) -> Tuple[YolloModel, Grounder, TrainingCurve]:
        """Train (or load) a YOLLO model on the named dataset."""
        key = f"{dataset_name}-{tag}"
        if key in self._yollo:
            return self._yollo[key]

        dataset = self.dataset(dataset_name)
        config = self.yollo_config(**config_overrides)
        epochs = epochs if epochs is not None else self.preset.yollo_epochs
        # epochs == 0 means the caller only needs the architecture (e.g.
        # the Table-5 timing rows) — skip the ImageNet-substitute step.
        pretrain_steps = self.preset.pretrain_steps if epochs > 0 else 1
        backbone = load_pretrained_backbone(
            config.backbone, steps=pretrain_steps,
            image_height=config.image_height, image_width=config.image_width,
        )
        embeddings = self.word2vec_matrix()

        weights_path = os.path.join(self.cache_dir, f"yollo-{key}.npz")
        curve_path = os.path.join(self.cache_dir, f"yollo-{key}-curve.json")
        curve = TrainingCurve(label=dataset_name)

        def build(unit_tag: str) -> YolloModel:
            # Model init runs inside the unit's RNG scope so the produced
            # weights are a function of (seed, unit_tag) alone.
            with self._unit_seed(unit_tag):
                return YolloModel(
                    config, vocab_size=len(dataset.vocab),
                    pretrained_embeddings=embeddings, backbone=backbone,
                )

        if os.path.exists(weights_path) and os.path.exists(curve_path):
            model = build(f"yollo-{key}")
            model.load(weights_path)
            with open(curve_path) as handle:
                payload = json.load(handle)
            curve.iterations = payload["iterations"]
            curve.values = payload["values"]
        else:
            # A small fraction of derived seeds put training on a
            # degenerate trajectory (the validation curve never leaves
            # ~0).  Detect that and reroll the unit seed, keeping the
            # best attempt, so the benchmark suite doesn't hinge on one
            # unlucky stream.
            best: Optional[Tuple[float, YolloModel, TrainingCurve]] = None
            for attempt in range(_YOLLO_TRAIN_ATTEMPTS):
                unit_tag = (f"yollo-{key}" if attempt == 0
                            else f"yollo-{key}-retry{attempt}")
                self.logger.log(
                    f"training YOLLO[{tag}] on {dataset_name} ({epochs} epochs)")
                per_epoch = -(-len(dataset["train"]) // config.batch_size)
                total_steps = max(2, epochs * per_epoch)
                with self._unit_seed(unit_tag):
                    model = YolloModel(
                        config, vocab_size=len(dataset.vocab),
                        pretrained_embeddings=embeddings, backbone=backbone,
                    )
                    # Warmup + cosine decay: the constant-LR runs were
                    # prone to late-training loss spikes that destroyed
                    # an already-good model; decaying into the tail
                    # stabilises them (keep_best is the backstop).
                    trainer = YolloTrainer(
                        model, dataset, config, logger=self.logger,
                        scheduler=lambda opt: WarmupCosineLR(
                            opt, warmup_steps=max(1, total_steps // 20),
                            total_steps=total_steps,
                            min_lr=0.1 * config.learning_rate,
                        ),
                    )
                    history = trainer.train(epochs=epochs,
                                            eval_every=self.preset.eval_every,
                                            eval_samples=self.preset.eval_limit,
                                            keep_best=True)
                curve = history.curve
                curve.label = dataset_name
                score = max(curve.values) if curve.values else 0.0
                if best is None or score > best[0]:
                    best = (score, model, curve)
                if epochs == 0 or not curve.values or score >= _DEGENERATE_ACC:
                    break
                self.logger.log(
                    f"YOLLO[{tag}] on {dataset_name} degenerate "
                    f"(best val ACC {score:.3f}); rerolling unit seed")
            _, model, curve = best
            model.save(weights_path)
            with open(curve_path, "w") as handle:
                json.dump({"iterations": curve.iterations,
                           "values": curve.values}, handle)

        grounder = Grounder(model, dataset.vocab)
        self._yollo[key] = (model, grounder, curve)
        return self._yollo[key]

    # ------------------------------------------------------------------
    # Two-stage baselines
    # ------------------------------------------------------------------
    def proposer(self) -> SegmentationProposer:
        return SegmentationProposer(rng=spawn_rng("experiments-proposer"))

    def baseline(self, kind: str, dataset_name: str) -> TwoStageGrounder:
        """Train (or load) a two-stage baseline: listener / speaker / both."""
        if kind not in ("listener", "speaker", "speaker+listener"):
            raise ValueError(f"unknown baseline kind: {kind}")
        cache_key = (kind, dataset_name)
        if cache_key in self._baselines:
            return self._baselines[cache_key]

        dataset = self.dataset(dataset_name)
        vocab = self.shared_vocab()
        max_len = self.max_query_length()
        proposer = self.proposer()
        matchers = {}
        if "listener" in kind:
            matchers["listener"] = self._trained_matcher(
                "listener", dataset_name,
                lambda: ListenerMatcher(vocab, max_query_length=max_len),
                lambda m: train_listener(
                    m, dataset["train"], proposer, steps=self.preset.baseline_steps,
                    logger=self.logger,
                ),
            )
        if "speaker" in kind:
            matchers["speaker"] = self._trained_matcher(
                "speaker", dataset_name,
                lambda: SpeakerScorer(vocab, max_query_length=max_len),
                lambda m: train_speaker(
                    m, dataset["train"], steps=self.preset.baseline_steps,
                    mmi_margin=0.1, logger=self.logger,
                ),
            )
        grounder = TwoStageGrounder(proposer, matchers)
        self._baselines[cache_key] = grounder
        return grounder

    def _trained_matcher(self, name: str, dataset_name: str, build, train):
        path = os.path.join(self.cache_dir, f"{name}-{dataset_name}.npz")
        with self._unit_seed(f"{name}-{dataset_name}"):
            matcher = build()
            if os.path.exists(path):
                matcher.load(path)
            else:
                self.logger.log(f"training {name} baseline on {dataset_name}")
                train(matcher)
                matcher.save(path)
        return matcher

    # ------------------------------------------------------------------
    # Evaluation (JSON-cached)
    # ------------------------------------------------------------------
    def evaluate(self, grounder, model_key: str, dataset_name: str,
                 split: str) -> MetricReport:
        """Evaluate a grounder on one split, caching the report."""
        path = os.path.join(
            self.cache_dir, f"eval-{model_key}-{dataset_name}-{split}.json"
        )
        if os.path.exists(path):
            with open(path) as handle:
                payload = json.load(handle)
            return MetricReport(
                acc=payload["ACC"], acc_at_50=payload["ACC@0.5"],
                acc_at_75=payload["ACC@0.75"], miou=payload["MIOU"],
                ious=np.asarray(payload["ious"]),
            )
        dataset = self.dataset(dataset_name)
        samples = dataset[split][: self.preset.eval_limit]
        report = evaluate_grounder(grounder, samples)
        payload = report.as_dict()
        payload["ious"] = [float(v) for v in report.ious]
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return report

    def eval_splits(self, dataset_name: str) -> List[str]:
        """Evaluation splits for a dataset (RefCOCOg has only val)."""
        return [s for s in ("val", "testA", "testB")
                if s in self.dataset(dataset_name).splits]
