"""Table 1 — dataset statistics.

Reproduces the paper's Table 1 (plus the query-length and same-type
densities quoted in Section 4.1) for the three synthetic datasets, and
appends a Table 1b covering the registered scenario workloads
(:mod:`repro.scenarios`): per scenario the sample counts plus the
query-type mix — the single/multi/no-target/weak-pair fractions that
distinguish the scenario regimes from the classic always-one-referent
datasets.
"""

from __future__ import annotations

from typing import Dict, List

from repro.data import dataset_statistics
from repro.eval import format_table
from repro.experiments.context import DATASET_NAMES, ExperimentContext


def collect(context: ExperimentContext) -> Dict[str, Dict[str, float]]:
    """Statistics per dataset."""
    return {
        name: dataset_statistics(context.dataset(name)) for name in DATASET_NAMES
    }


def collect_scenarios(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Statistics per registered scenario workload."""
    from repro.scenarios import available_scenarios

    return {
        name: dataset_statistics(context.scenario_dataset(name))
        for name in available_scenarios()
    }


def run(context: ExperimentContext) -> str:
    """Render the Table-1 report (datasets, then scenario workloads)."""
    stats = collect(context)
    rows: List[List[object]] = []
    for name, values in stats.items():
        rows.append(
            [
                name,
                int(values["images"]),
                int(values["queries"]),
                int(values["targets"]),
                values["avg_query_length"],
                values["avg_same_type"],
            ]
        )
    datasets_table = format_table(
        ["Dataset", "#images", "#queries", "#targets", "avg len", "same-type"],
        rows,
        title="Table 1: dataset statistics (synthetic RefCOCO substitutes)",
    )

    scenario_rows: List[List[object]] = []
    for name, values in collect_scenarios(context).items():
        mix = values["query_type_mix"]
        scenario_rows.append(
            [
                name,
                int(values["images"]),
                int(values["queries"]),
                values["avg_query_length"],
                mix.get("single", 0.0),
                mix.get("multi", 0.0),
                mix.get("no_target", 0.0),
                mix.get("weak_pair", 0.0),
            ]
        )
    scenarios_table = format_table(
        ["Scenario", "#images", "#queries", "avg len",
         "single", "multi", "no-target", "weak-pair"],
        scenario_rows,
        title="Table 1b: scenario workloads (query-type mix)",
    )
    return datasets_table + "\n\n" + scenarios_table
