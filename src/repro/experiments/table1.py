"""Table 1 — dataset statistics.

Reproduces the paper's Table 1 (plus the query-length and same-type
densities quoted in Section 4.1) for the three synthetic datasets.
"""

from __future__ import annotations

from typing import Dict, List

from repro.data import dataset_statistics
from repro.eval import format_table
from repro.experiments.context import DATASET_NAMES, ExperimentContext


def collect(context: ExperimentContext) -> Dict[str, Dict[str, float]]:
    """Statistics per dataset."""
    return {
        name: dataset_statistics(context.dataset(name)) for name in DATASET_NAMES
    }


def run(context: ExperimentContext) -> str:
    """Render the Table-1 report."""
    stats = collect(context)
    rows: List[List[object]] = []
    for name, values in stats.items():
        rows.append(
            [
                name,
                int(values["images"]),
                int(values["queries"]),
                int(values["targets"]),
                values["avg_query_length"],
                values["avg_same_type"],
            ]
        )
    return format_table(
        ["Dataset", "#images", "#queries", "#targets", "avg len", "same-type"],
        rows,
        title="Table 1: dataset statistics (synthetic RefCOCO substitutes)",
    )
