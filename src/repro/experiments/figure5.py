"""Figure 5 — qualitative attention masks and predicted boxes.

Runs the trained RefCOCO model on validation scenes, including
contrastive query pairs over the same image (the paper's "left most
toilet" vs "right urinal" effect), rendering the last Rel2Att attention
mask plus the predicted and ground-truth boxes as ASCII panels and
optional PPM images.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.experiments.context import ExperimentContext
from repro.viz import draw_box, overlay_attention, render_attention_ascii, save_ppm

DATASET = "RefCOCO"


def run(context: ExperimentContext, num_panels: int = 4,
        ppm_dir: Optional[str] = None) -> str:
    """Render qualitative panels; optionally write PPM figures."""
    _, grounder, _ = context.yollo(DATASET)
    dataset = context.dataset(DATASET)
    model = grounder.model
    stride = model.encoder.backbone.stride

    # Prefer pairs of queries over the same scene (contrastive panels).
    by_scene = {}
    for sample in dataset["val"]:
        by_scene.setdefault(id(sample.scene), []).append(sample)
    paired = [group for group in by_scene.values() if len(group) >= 2]
    flat: List = [s for group in paired for s in group[:2]]
    chosen = (flat + dataset["val"])[:num_panels]

    if ppm_dir:
        os.makedirs(ppm_dir, exist_ok=True)

    parts: List[str] = ["Figure 5: qualitative results (attention + top-1 box)"]
    for index, sample in enumerate(chosen):
        prediction = grounder.ground(sample.image, sample.query)
        parts.append("")
        parts.append(f'query: "{sample.query}"  (score={prediction.score:.2f})')
        parts.append(
            render_attention_ascii(
                prediction.attention_map, box=prediction.box, stride=stride
            )
        )
        if ppm_dir:
            figure = overlay_attention(sample.image, prediction.attention_map)
            figure = draw_box(figure, prediction.box, color=(1.0, 0.0, 0.0))
            figure = draw_box(figure, sample.target_box, color=(0.0, 1.0, 0.0))
            save_ppm(os.path.join(ppm_dir, f"figure5-{index}.ppm"), figure)
    return "\n".join(parts)
