"""Table 5 — single-query inference latency.

Times the speaker / listener / speaker+listener pipelines (matching
stage, with the stage-i proposal time reported separately in
parentheses, as in the paper) against YOLLO with the ResNet-50- and
ResNet-101-style backbones.  The parenthesised proposal time uses the
trained RPN (the Faster-R-CNN stand-in) on the full-resolution image.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.eval import TimingReport, format_table, time_grounder
from repro.experiments.context import ExperimentContext
from repro.twostage import RPNProposer

DATASET = "RefCOCO"


def collect(context: ExperimentContext) -> Dict[str, TimingReport]:
    """Timing reports per model row."""
    dataset = context.dataset(DATASET)
    samples = dataset["val"][: context.preset.timing_samples]
    # Stage-i stand-in for the parenthesised Faster-RCNN time.
    rpn = RPNProposer(backbone="resnet50",
                      image_height=dataset.spec.image_height,
                      image_width=dataset.spec.image_width)

    results: Dict[str, TimingReport] = {}
    for kind in ("speaker", "listener", "speaker+listener"):
        grounder = context.baseline(kind, DATASET)
        rpn_timer = lambda sample: _time_rpn(rpn, sample)
        results[kind] = time_grounder(
            grounder.ground_batch, samples, proposal_timer=rpn_timer
        )

    for backbone, label in (("resnet50", "YOLLO (ResNet-50 C4 backbone)"),
                            ("resnet101", "YOLLO (ResNet-101 C4 backbone)")):
        if backbone == "resnet50":
            _, grounder, _ = context.yollo(DATASET)
            yollo50 = grounder
        else:
            _, grounder, _ = context.yollo(
                DATASET, tag="timing-resnet101",
                epochs=0, backbone="resnet101",
            )
        results[label] = time_grounder(grounder.ground_batch, samples)

    # Graph-compiled variant of the ResNet-50 row: same weights, same
    # bit-exact outputs, traced/fused/arena-executed forward pass.
    yollo50.compile()
    try:
        yollo50.ground_batch(samples[:1])  # compile outside the timing
        results["YOLLO (ResNet-50, compiled)"] = time_grounder(
            yollo50.ground_batch, samples
        )
    finally:
        yollo50.uncompile()
    return results


def _time_rpn(rpn: RPNProposer, sample) -> float:
    import time

    start = time.perf_counter()
    rpn.propose(sample.image)
    return time.perf_counter() - start


def run(context: ExperimentContext) -> str:
    """Render the Table-5 report.

    The "Model ms" column comes from :mod:`repro.obs` spans
    (``yollo.forward`` / ``twostage.match``): time spent inside the
    network, versus the end-to-end per-query latency whose difference is
    decode/dispatch overhead — the same attribution the paper uses to
    charge two-stage pipelines for proposal generation.
    """
    results = collect(context)
    yollo_mean = results["YOLLO (ResNet-50 C4 backbone)"].mean
    rows: List[List[object]] = []
    for name, report in results.items():
        extra = f" (+{report.proposal_mean * 1000:.1f}ms)" if report.proposal_mean else ""
        speedup = report.total_mean / max(yollo_mean, 1e-9)
        rows.append(
            [
                name,
                f"{report.mean * 1000:.1f}ms{extra}",
                f"{report.model_mean * 1000:.1f}ms",
                f"{speedup:.1f}x",
            ]
        )
    return format_table(
        ["Model", "Seconds/query (matching + proposals)", "Model ms", "vs YOLLO-50"],
        rows,
        title="Table 5: single-query inference latency (CPU)",
    )
