"""Table 4 — Rel2Att ablations: wipe self-attention or co-attention.

The full-model row reuses the Table-2 checkpoints (the preset's main
training budget); the wiped arms train at the (smaller) ablation budget.
The paper's qualitative finding — removing co-attention collapses the
model to query-blind dataset biases, removing self-attention hurts less
catastrophically — is judged on the co-attention row, which is immune
to the budget difference because a query-blind model cannot exceed the
dataset's single-object prior no matter how long it trains.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.eval import format_table
from repro.experiments.context import DATASET_NAMES, ExperimentContext

ARMS = (
    ("YOLLO", {}),
    ("YOLLO (w/o self-attention)", {"use_self_attention": False}),
    ("YOLLO (w/o co-attention)", {"use_co_attention": False}),
)


def collect(context: ExperimentContext) -> Dict[str, Dict[Tuple[str, str], float]]:
    """ACC@0.5 per arm per (dataset, split)."""
    results: Dict[str, Dict[Tuple[str, str], float]] = {}
    for arm_name, overrides in ARMS:
        row: Dict[Tuple[str, str], float] = {}
        for dataset_name in DATASET_NAMES:
            if not overrides:
                _, grounder, _ = context.yollo(dataset_name)
                model_key = f"yollo-{dataset_name}"
            else:
                tag = ("ablation-noself" if "use_self_attention" in overrides
                       else "ablation-noco")
                _, grounder, _ = context.yollo(
                    dataset_name, tag=tag,
                    epochs=context.preset.ablation_epochs, **overrides,
                )
                model_key = f"yollo-{tag}-{dataset_name}"
            for split in context.eval_splits(dataset_name):
                report = context.evaluate(grounder, model_key, dataset_name, split)
                row[(dataset_name, split)] = report.acc_at_50 * 100
        results[arm_name] = row
    return results


def run(context: ExperimentContext) -> str:
    """Render the Table-4 report."""
    results = collect(context)
    columns = sorted({key for row in results.values() for key in row})
    headers = ["Method"] + [f"{d}/{s}" for d, s in columns]
    rows: List[List[object]] = []
    for arm_name, _ in ARMS:
        row: List[object] = [arm_name]
        for column in columns:
            value = results[arm_name].get(column)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(
        headers, rows,
        title=("Table 4: Rel2Att ablations, ACC@0.5 (%)"
               " (full row = main budget, wiped rows = ablation budget)"),
    )
