"""Whitespace/punctuation tokenisation and lossless lexing."""

from __future__ import annotations

import re
from typing import List

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")

#: Word-final possessive clitic ("man's", "driver's", curly apostrophe
#: included).  Stripped before alphanumeric splitting so the clitic
#: never surfaces as a stray ``s`` token polluting the vocabulary and
#: the word2vec corpus.
_POSSESSIVE_PATTERN = re.compile(r"(?<=[a-z0-9])['’]s\b")

#: Lexeme grammar: words (internal hyphens kept, so "left-most" stays
#: one lexeme), the possessive clitic as its own lexeme, and the
#: punctuation marks that carry sentence/clause boundaries.
_LEX_PATTERN = re.compile(
    r"[a-z0-9]+(?:-[a-z0-9]+)*"
    r"|['’]s"
    r"|[.,;:!?]"
)

#: Lexemes that end a sentence in :func:`lex` output.
SENTENCE_BREAKS = frozenset({".", "!", "?"})

#: Every punctuation lexeme :func:`lex` can emit.
PUNCTUATION = frozenset({".", ",", ";", ":", "!", "?"})


def tokenize(text: str) -> List[str]:
    """Lower-case and split a query into alphanumeric tokens.

    Punctuation is discarded and word-final possessive clitics are
    stripped (``"the man's hat"`` -> ``["the", "man", "hat"]``);
    referring expressions in the benchmark datasets are short noun
    phrases so this simple scheme is lossless for our grammar and
    robust for free-form user queries.
    """
    return _TOKEN_PATTERN.findall(_POSSESSIVE_PATTERN.sub("", text.lower()))


def lex(text: str) -> List[str]:
    """Lower-cased lossless lexing for the structured-query parser.

    Unlike :func:`tokenize`, punctuation marks and possessive clitics
    survive as their own lexemes and hyphenated words stay whole, so
    sentence boundaries ("a red car. the dog next to it") and clause
    structure are recoverable downstream.  Characters outside the
    lexeme grammar (emoji, accented letters) are dropped, matching the
    tokenizer's ASCII-alphanumeric scope.
    """
    return _LEX_PATTERN.findall(text.lower())


def normalize_query(query: str) -> str:
    """Canonical serve-front-door form of a query string.

    Lower-cases, collapses whitespace, normalises punctuation spacing,
    and drops trailing punctuation, so ``"the red car"`` and
    ``" The red car. "`` map to one string — and therefore one cache
    entry — while multi-sentence structure ("a red car . the dog next
    to it") is preserved.  Tokenisation is invariant under
    normalisation: ``tokenize(normalize_query(q)) == tokenize(q)``.
    """
    parts = lex(str(query))
    while parts and parts[-1] in PUNCTUATION:
        parts.pop()
    words: List[str] = []
    for part in parts:
        if part and part[0] in "'’" and words:
            # Re-attach the possessive clitic so the normalised string
            # round-trips through tokenize() unchanged.
            words[-1] += "'" + part[1:]
            continue
        words.append(part)
    return " ".join(words)
