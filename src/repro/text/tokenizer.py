"""Whitespace/punctuation tokenisation for referring expressions."""

from __future__ import annotations

import re
from typing import List

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lower-case and split a query into alphanumeric tokens.

    Punctuation is discarded; referring expressions in the benchmark
    datasets are short noun phrases so this simple scheme is lossless
    for our grammar and robust for free-form user queries.
    """
    return _TOKEN_PATTERN.findall(text.lower())
