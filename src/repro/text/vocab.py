"""Vocabulary with PAD/UNK handling and padded encoding."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.text.tokenizer import tokenize

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"


class Vocabulary:
    """Bidirectional token/id mapping.

    Index 0 is PAD and index 1 is UNK, mirroring the paper's handling of
    padded queries and out-of-embedding tokens.
    """

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: Dict[str, int] = {PAD_TOKEN: 0, UNK_TOKEN: 1}
        self._id_to_token: List[str] = [PAD_TOKEN, UNK_TOKEN]
        for token in tokens:
            self.add(token)

    @classmethod
    def from_corpus(cls, sentences: Iterable[Sequence[str]]) -> "Vocabulary":
        """Build a vocabulary from tokenised sentences (sorted for determinism)."""
        seen = set()
        for sentence in sentences:
            seen.update(sentence)
        return cls(sorted(seen))

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def unk_id(self) -> int:
        return 1

    def add(self, token: str) -> int:
        """Insert a token if new; return its id."""
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, index: int) -> str:
        return self._id_to_token[index]

    def encode(self, text_or_tokens, max_length: int) -> Tuple[np.ndarray, np.ndarray]:
        """Encode a query to ``(ids, mask)`` padded/truncated to ``max_length``.

        Accepts either a raw string (tokenised here) or a token list.
        ``mask`` is 1.0 on real tokens and 0.0 on padding.
        """
        tokens = tokenize(text_or_tokens) if isinstance(text_or_tokens, str) else list(text_or_tokens)
        tokens = tokens[:max_length]
        ids = np.full(max_length, self.pad_id, dtype=np.int64)
        mask = np.zeros(max_length, dtype=np.float64)
        for i, token in enumerate(tokens):
            ids[i] = self.token_to_id(token)
            mask[i] = 1.0
        return ids, mask

    def decode(self, ids: Sequence[int]) -> List[str]:
        """Map ids back to tokens, dropping padding."""
        return [self._id_to_token[i] for i in ids if i != self.pad_id]
