"""Language substrate: tokenisation, vocabulary, embeddings, word2vec.

Replaces the paper's LM-1B-pretrained Word2Vec pipeline: a skip-gram
model with negative sampling is pre-trained on a synthetic referring-
expression corpus and loaded into the query embedding layer, which is
then fine-tuned jointly with the rest of YOLLO.
"""

from repro.text.tokenizer import lex, normalize_query, tokenize
from repro.text.vocab import Vocabulary
from repro.text.position import learned_position_table, sinusoidal_position_table
from repro.text.word2vec import SkipGramWord2Vec
from repro.text.corpus import build_corpus

__all__ = [
    "tokenize",
    "lex",
    "normalize_query",
    "Vocabulary",
    "sinusoidal_position_table",
    "learned_position_table",
    "SkipGramWord2Vec",
    "build_corpus",
]
