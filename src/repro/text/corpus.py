"""Synthetic pre-training corpus (the stand-in for LM-1B).

Word2Vec in the paper is pre-trained on the One-Billion-Word corpus; we
pre-train on referring expressions sampled from the same grammar the
datasets use, which provides in-domain co-occurrence statistics (colour
and size modifiers next to category nouns, location idioms, etc.).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.text.tokenizer import tokenize
from repro.utils.seeding import spawn_rng


def build_corpus(num_sentences: int = 600,
                 rng: Optional[np.random.Generator] = None) -> List[List[str]]:
    """Sample tokenised referring expressions across all three flavours."""
    # Imported lazily: repro.data imports repro.text at package level.
    from repro.data.expressions import ExpressionGenerator
    from repro.data.scenes import SceneGenerator

    rng = rng if rng is not None else spawn_rng("corpus")
    sentences: List[List[str]] = []
    flavors = ("refcoco", "refcoco+", "refcocog")
    generators = {
        flavor: ExpressionGenerator(flavor, rng=rng) for flavor in flavors
    }
    scene_gen = SceneGenerator(rng=rng, distinct_colors=True)
    while len(sentences) < num_sentences:
        scene = scene_gen.generate(rng=rng)
        flavor = flavors[int(rng.integers(0, len(flavors)))]
        target = scene.objects[int(rng.integers(0, len(scene.objects)))]
        query = generators[flavor].generate(scene, target, rng=rng)
        if query is not None:
            sentences.append(tokenize(query))
    return sentences
