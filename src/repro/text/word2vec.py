"""Skip-gram Word2Vec with negative sampling (Mikolov et al., 2013).

Stands in for the paper's LM-1B-pretrained 512-D embeddings: we
pre-train on the in-domain referring-expression corpus produced by
:func:`repro.text.corpus.build_corpus` and load the resulting vectors
into YOLLO's query embedding layer before joint fine-tuning.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.text.vocab import Vocabulary
from repro.utils.seeding import spawn_rng


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class SkipGramWord2Vec:
    """Skip-gram embedding trainer over a tokenised corpus.

    Parameters
    ----------
    vocab:
        Vocabulary covering the corpus; PAD keeps a zero vector.
    dim:
        Embedding dimensionality.
    window:
        Context half-window size.
    negatives:
        Negative samples per positive pair.
    """

    def __init__(self, vocab: Vocabulary, dim: int = 32, window: int = 2,
                 negatives: int = 5, lr: float = 0.05,
                 rng: np.random.Generator = None):
        self.vocab = vocab
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.lr = lr
        self._rng = rng or spawn_rng("word2vec")
        scale = 0.5 / dim
        self.input_vectors = self._rng.uniform(-scale, scale, size=(len(vocab), dim))
        self.output_vectors = np.zeros((len(vocab), dim))
        self.input_vectors[vocab.pad_id] = 0.0

    def _unigram_table(self, sentences: Sequence[Sequence[str]]) -> np.ndarray:
        """Negative-sampling distribution: unigram counts to the 3/4 power."""
        counts = np.ones(len(self.vocab))
        for sentence in sentences:
            for token in sentence:
                counts[self.vocab.token_to_id(token)] += 1
        counts[self.vocab.pad_id] = 0.0
        weights = counts**0.75
        return weights / weights.sum()

    def train(self, sentences: Sequence[Sequence[str]], epochs: int = 3) -> float:
        """Run SGD over all (center, context) pairs; returns final mean loss."""
        distribution = self._unigram_table(sentences)
        encoded = [
            np.asarray([self.vocab.token_to_id(t) for t in sentence], dtype=np.int64)
            for sentence in sentences
            if len(sentence) >= 2
        ]
        final_loss = 0.0
        for _ in range(epochs):
            order = self._rng.permutation(len(encoded))
            losses: List[float] = []
            for sent_idx in order:
                ids = encoded[sent_idx]
                for center_pos, center in enumerate(ids):
                    lo = max(0, center_pos - self.window)
                    hi = min(len(ids), center_pos + self.window + 1)
                    for ctx_pos in range(lo, hi):
                        if ctx_pos == center_pos:
                            continue
                        losses.append(self._update(center, ids[ctx_pos], distribution))
            final_loss = float(np.mean(losses)) if losses else 0.0
        return final_loss

    def _update(self, center: int, context: int, distribution: np.ndarray) -> float:
        """One negative-sampling SGD step; returns the pair loss."""
        negatives = self._rng.choice(len(self.vocab), size=self.negatives, p=distribution)
        targets = np.concatenate([[context], negatives])
        labels = np.zeros(len(targets))
        labels[0] = 1.0

        center_vec = self.input_vectors[center]
        target_vecs = self.output_vectors[targets]
        scores = _sigmoid(target_vecs @ center_vec)
        errors = scores - labels

        grad_center = errors @ target_vecs
        self.output_vectors[targets] -= self.lr * errors[:, None] * center_vec[None, :]
        self.input_vectors[center] -= self.lr * grad_center

        positive_loss = -np.log(max(scores[0], 1e-12))
        negative_loss = -np.log(np.maximum(1.0 - scores[1:], 1e-12)).sum()
        return float(positive_loss + negative_loss)

    def embedding_matrix(self) -> np.ndarray:
        """Return a copy of the trained input vectors (PAD row zeroed)."""
        matrix = self.input_vectors.copy()
        matrix[self.vocab.pad_id] = 0.0
        return matrix

    def most_similar(self, token: str, top_k: int = 5) -> List[str]:
        """Nearest neighbours by cosine similarity (diagnostics/tests)."""
        query = self.input_vectors[self.vocab.token_to_id(token)]
        norms = np.linalg.norm(self.input_vectors, axis=1) * (np.linalg.norm(query) + 1e-12)
        scores = self.input_vectors @ query / np.maximum(norms, 1e-12)
        scores[self.vocab.token_to_id(token)] = -np.inf
        scores[self.vocab.pad_id] = -np.inf
        best = np.argsort(-scores)[:top_k]
        return [self.vocab.id_to_token(int(i)) for i in best]
