"""Positional-embedding tables for query word ordering (Section 3.1)."""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import get_rng


def sinusoidal_position_table(max_length: int, dim: int) -> np.ndarray:
    """Fixed sinusoidal table as in Vaswani et al. (2017): ``(L, d)``."""
    if dim % 2 != 0:
        raise ValueError("sinusoidal embeddings require an even dimension")
    positions = np.arange(max_length, dtype=np.float64)[:, None]
    freq_index = np.arange(dim // 2, dtype=np.float64)[None, :]
    angular = positions / np.power(10000.0, 2.0 * freq_index / dim)
    table = np.empty((max_length, dim), dtype=np.float64)
    table[:, 0::2] = np.sin(angular)
    table[:, 1::2] = np.cos(angular)
    return table


def learned_position_table(max_length: int, dim: int,
                           rng: np.random.Generator = None) -> np.ndarray:
    """Randomly initialised learnable position table (fine-tuned in YOLLO)."""
    rng = rng or get_rng()
    return rng.normal(0.0, 0.02, size=(max_length, dim))
