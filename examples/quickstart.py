#!/usr/bin/env python3
"""Quickstart: train a small YOLLO model and ground a few queries.

Runs in a couple of minutes on one CPU core::

    python examples/quickstart.py
"""

import numpy as np

from repro import quick_grounder
from repro.autograd import set_default_dtype
from repro.detection import iou_matrix
from repro.utils import seed_everything
from repro.viz import render_attention_ascii


def main() -> None:
    set_default_dtype(np.float32)  # ~2x faster training on CPU
    seed_everything(0)

    print("Training a small YOLLO model on synthetic RefCOCO ...")
    grounder, dataset = quick_grounder(dataset_scale=0.3, epochs=6)

    print("\nGrounding validation queries:\n")
    stride = grounder.model.encoder.backbone.stride
    for sample in dataset["val"][:4]:
        prediction = grounder.ground(sample.image, sample.query)
        iou = iou_matrix(prediction.box[None], sample.target_box[None])[0, 0]
        status = "HIT " if iou > 0.5 else "MISS"
        print(f'[{status}] "{sample.query}"')
        print(f"  predicted box {np.round(prediction.box, 1)}  "
              f"target {np.round(sample.target_box, 1)}  IoU={iou:.2f}")
        print(render_attention_ascii(prediction.attention_map,
                                     box=prediction.box, stride=stride))
        print()


if __name__ == "__main__":
    main()
