#!/usr/bin/env python3
"""Head-to-head: YOLLO vs a two-stage speaker/listener pipeline.

Reproduces the paper's core argument (Figure 1 + Table 5) on one CPU:
the two-stage pipeline pays a per-proposal matching cost and inherits
stage-i misses, while YOLLO runs a single conditioned detection pass.

    python examples/one_stage_vs_two_stage.py
"""

import numpy as np

from repro.autograd import set_default_dtype
from repro.backbone import load_pretrained_backbone
from repro.core import Grounder, YolloConfig, YolloModel, YolloTrainer
from repro.data import REFCOCO, build_dataset
from repro.detection import iou_matrix
from repro.eval import evaluate_grounder, time_grounder
from repro.twostage import (
    ListenerMatcher,
    SegmentationProposer,
    SpeakerScorer,
    TwoStageGrounder,
    train_listener,
    train_speaker,
)
from repro.utils import seed_everything


def main() -> None:
    set_default_dtype(np.float32)
    seed_everything(3)
    dataset = build_dataset(REFCOCO.scaled(0.5))
    train, val = dataset["train"], dataset["val"]

    print("== Stage i: query-blind proposals ==")
    proposer = SegmentationProposer()
    recalls = []
    counts = []
    for sample in val:
        proposals = proposer.propose(sample.image)
        counts.append(len(proposals))
        recalls.append(
            float(iou_matrix(proposals.boxes, sample.target_box[None]).max() > 0.5)
        )
    print(f"avg proposals/image: {np.mean(counts):.0f}   "
          f"target recall@0.5: {np.mean(recalls):.2f} "
          f"(a miss here dooms the two-stage pipeline)\n")

    print("== Training the two-stage matchers ==")
    listener = ListenerMatcher(dataset.vocab, max_query_length=dataset.max_query_length)
    train_listener(listener, train, proposer, steps=300)
    speaker = SpeakerScorer(dataset.vocab, max_query_length=dataset.max_query_length)
    train_speaker(speaker, train, steps=300, mmi_margin=0.1)
    two_stage = TwoStageGrounder(proposer, {"speaker": speaker, "listener": listener})

    print("== Training YOLLO (one-stage) ==")
    config = YolloConfig(max_query_length=max(8, dataset.max_query_length))
    backbone = load_pretrained_backbone(config.backbone, steps=300)
    model = YolloModel(config, vocab_size=len(dataset.vocab), backbone=backbone)
    trainer = YolloTrainer(model, dataset, config)
    trainer.train(epochs=6)
    yollo = Grounder(model, dataset.vocab)

    print("\n== Accuracy (val ACC@0.5) ==")
    two_stage_report = evaluate_grounder(two_stage, val)
    yollo_report = evaluate_grounder(yollo, val)
    print(f"speaker+listener: {two_stage_report.acc_at_50:.2%}")
    print(f"YOLLO:            {yollo_report.acc_at_50:.2%}")

    print("\n== Latency (per query) ==")
    two_stage_time = time_grounder(two_stage.ground_batch, val[:8],
                                   proposal_timer=two_stage.proposal_time)
    yollo_time = time_grounder(yollo.ground_batch, val[:8])
    ratio = two_stage_time.total_mean / yollo_time.mean
    print(f"speaker+listener: {two_stage_time.mean * 1000:.1f}ms "
          f"(+{two_stage_time.proposal_mean * 1000:.1f}ms proposals)")
    print(f"YOLLO:            {yollo_time.mean * 1000:.1f}ms   ({ratio:.1f}x faster)")


if __name__ == "__main__":
    main()
