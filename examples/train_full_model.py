#!/usr/bin/env python3
"""Full training recipe with checkpointing and a training curve.

The long-form version of the quickstart: builds the standard RefCOCO
substitute, pre-trains the backbone and word2vec embeddings, trains
YOLLO with curve recording, reports every Table-3 metric, and saves the
checkpoint so it can be reloaded later.

    python examples/train_full_model.py [epochs]
"""

import os
import sys

import numpy as np

from repro.autograd import set_default_dtype
from repro.backbone import load_pretrained_backbone
from repro.core import Grounder, YolloConfig, YolloModel, YolloTrainer
from repro.data import REFCOCO, build_dataset
from repro.eval import evaluate_grounder
from repro.text import SkipGramWord2Vec, build_corpus
from repro.utils import ProgressLogger, seed_everything

CHECKPOINT = os.path.join(os.path.dirname(__file__), "output", "yollo-refcoco.npz")


def main() -> None:
    epochs = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    set_default_dtype(np.float32)
    seed_everything(0)
    logger = ProgressLogger("train")

    logger.log("building dataset")
    dataset = build_dataset(REFCOCO)

    logger.log("pre-training word2vec on the synthetic corpus (LM-1B substitute)")
    word2vec = SkipGramWord2Vec(dataset.vocab, dim=24)
    word2vec.train(build_corpus(300), epochs=2)

    logger.log("loading ImageNet-substitute backbone")
    config = YolloConfig(max_query_length=max(8, dataset.max_query_length))
    backbone = load_pretrained_backbone(config.backbone, steps=600)

    model = YolloModel(
        config, vocab_size=len(dataset.vocab),
        pretrained_embeddings=word2vec.embedding_matrix(), backbone=backbone,
    )
    logger.log(f"model has {model.num_parameters():,} parameters")

    trainer = YolloTrainer(model, dataset, config, logger=logger)
    history = trainer.train(epochs=epochs, eval_every=50)
    print("\n" + history.curve.render_ascii())

    grounder = Grounder(model, dataset.vocab)
    for split in ("val", "testA", "testB"):
        report = evaluate_grounder(grounder, dataset[split])
        metrics = " ".join(f"{k}={v:.2%}" for k, v in report.as_dict().items())
        print(f"{split}: {metrics}")

    os.makedirs(os.path.dirname(CHECKPOINT), exist_ok=True)
    model.save(CHECKPOINT)
    print(f"checkpoint written to {CHECKPOINT}")

    # Demonstrate reload.
    clone = YolloModel(config, vocab_size=len(dataset.vocab))
    clone.load(CHECKPOINT)
    print("checkpoint reloads cleanly")


if __name__ == "__main__":
    main()
