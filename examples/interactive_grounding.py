#!/usr/bin/env python3
"""Interactive grounding: changing the query moves the attended region.

Reproduces the Figure-5 effect ("left most toilet" vs "right urinal"):
the same image is queried with contrastive expressions and the attention
mask plus predicted box follow the language.  Panels are printed as
ASCII and written as PPM images under ``examples/output/``.

    python examples/interactive_grounding.py
"""

import os

import numpy as np

from repro import quick_grounder
from repro.autograd import set_default_dtype
from repro.data import ExpressionGenerator
from repro.utils import seed_everything
from repro.viz import draw_box, overlay_attention, render_attention_ascii, save_ppm

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    set_default_dtype(np.float32)
    seed_everything(0)
    grounder, dataset = quick_grounder(dataset_scale=0.3, epochs=6)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    stride = grounder.model.encoder.backbone.stride

    # Pick a validation scene and describe *several different* objects.
    expressions = ExpressionGenerator("refcoco")
    sample = max(dataset["val"], key=lambda s: len(s.scene.objects))
    scene = sample.scene
    print(f"scene with {len(scene.objects)} objects: "
          + ", ".join(f"{o.color} {o.category}" for o in scene.objects))

    panel = 0
    for index, target in enumerate(scene.objects):
        query = expressions.generate(scene, target)
        if query is None:
            continue
        prediction = grounder.ground(sample.image, query)
        print(f'\nquery: "{query}"  ->  box {np.round(prediction.box, 1)} '
              f"(target {np.round(target.box, 1)})")
        print(render_attention_ascii(prediction.attention_map,
                                     box=prediction.box, stride=stride))
        figure = overlay_attention(sample.image, prediction.attention_map)
        figure = draw_box(figure, prediction.box, color=(1.0, 0.0, 0.0))
        figure = draw_box(figure, target.box, color=(0.0, 1.0, 0.0))
        path = os.path.join(OUTPUT_DIR, f"grounding-{panel}.ppm")
        save_ppm(path, figure)
        print(f"wrote {path}")
        panel += 1
        if panel >= 4:
            break


if __name__ == "__main__":
    main()
