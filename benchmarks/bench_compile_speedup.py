"""Graph-compiled inference vs eager — the compile pipeline must pay.

Traces the tiny-preset YOLLO forward into an execution plan (constant
folding, BatchNorm folding, conv/add epilogue fusion, arena buffer
reuse, per-node conv autotuning) and times ``predict`` eager vs
compiled.  Measurement is single-query (batch 1), matching the paper's
deployment-style Table-5 timing and ``repro.eval.timing``.  Timing is
min-of-N: the minimum over repeated passes is the stable estimator for
CPU microbenchmarks, where the mean is polluted by scheduler noise.
Compiled inference must be at least 1.3x faster than eager on the same
inputs, bit-for-bit equal outputs being asserted first — a speedup from
diverging numerics would be meaningless.
"""

import time

import numpy as np
import pytest
from conftest import write_artifact

from repro.core import YolloConfig, YolloModel
from repro.data import REFCOCO, build_dataset
from repro.data.loader import encode_batch
from repro.utils import seed_everything

pytestmark = pytest.mark.slow

BATCH_SIZE = 1
REPS = 12
MIN_SPEEDUP = 1.3


def _make_model():
    seed_everything(13)
    dataset = build_dataset(REFCOCO.scaled(0.2))
    cfg = YolloConfig(
        backbone="tiny", d_model=16, d_rel=24, ffn_hidden=24, head_hidden=24,
        num_rel2att=2, batch_size=BATCH_SIZE,
        max_query_length=max(6, dataset.max_query_length),
    )
    model = YolloModel(cfg, vocab_size=len(dataset.vocab))
    model.eval()
    return model, dataset, cfg


def _time_predict(model, batch, reps=REPS):
    """Min-of-N seconds for one ``predict`` over the batch."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        model.predict(batch["images"], batch["token_ids"], batch["token_mask"])
        best = min(best, time.perf_counter() - start)
    return best


def test_compiled_inference_speedup(results_dir):
    model, dataset, cfg = _make_model()
    batch = encode_batch(
        dataset["val"][:BATCH_SIZE], dataset.vocab, cfg.max_query_length
    )

    # Correctness gate before any timing: compiled must equal eager
    # byte-for-byte on boxes, scores, and attention maps.
    eager_preds = model.predict(
        batch["images"], batch["token_ids"], batch["token_mask"]
    )
    model.compile()
    compile_start = time.perf_counter()
    compiled_preds = model.predict(
        batch["images"], batch["token_ids"], batch["token_mask"]
    )
    compile_wall = time.perf_counter() - compile_start
    for e, c in zip(eager_preds, compiled_preds):
        assert e.box.tobytes() == c.box.tobytes()
        assert e.score == c.score and e.anchor_index == c.anchor_index
        assert e.attention_map.tobytes() == c.attention_map.tobytes()

    compiled_wall = _time_predict(model, batch)
    model.uncompile()
    eager_wall = _time_predict(model, batch)

    speedup = eager_wall / compiled_wall
    assert speedup >= MIN_SPEEDUP, (
        f"compiled inference only {speedup:.2f}x faster than eager "
        f"(need >= {MIN_SPEEDUP}x): eager {eager_wall * 1e3:.2f}ms, "
        f"compiled {compiled_wall * 1e3:.2f}ms"
    )

    lines = [
        f"Compiled inference speedup (tiny preset, single query, "
        f"min of {REPS})",
        f"  eager    : {eager_wall * 1e3:8.2f} ms/query",
        f"  compiled : {compiled_wall * 1e3:8.2f} ms/query",
        f"  speedup  : {speedup:8.2f} x  (floor {MIN_SPEEDUP}x)",
        f"  first call (trace+passes+plan+run): {compile_wall * 1e3:.1f} ms",
        "  outputs  : bit-exact (boxes, scores, attention maps)",
    ]
    write_artifact(results_dir, "compile_speedup.txt", "\n".join(lines))
