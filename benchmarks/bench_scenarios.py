"""Scenario workloads — per-scenario serving p99 and no-target accuracy.

Replays the ``mixed`` trace mix (driving + crowded + weak) against an
oracle replica fleet serving ground-truth ranked answers, with a
rolling weight reload fired mid-soak, and records the baselines this
PR's workload matrix introduces:

* per-scenario p99 latency — one slow scenario cannot hide inside the
  aggregate percentile;
* no-target accuracy — every query whose referent is absent must come
  back ``not_found``; a single false "found" fails the benchmark;
* structured-protocol integrity across the reload — post-reload
  responses must carry the reloaded weights' version (the ranked
  response analogue of the stale-box invariant).

Numbers land in ``results/scenarios.txt`` and the consolidated
``results/summary.json`` via ``run_all.py``.
"""

import dataclasses
import faulthandler

import numpy as np
import pytest
from conftest import write_artifact

from repro.runtime import CheckpointManager
from repro.scenarios import build_oracle_grounder, build_trace_mix
from repro.serve import FleetConfig, FleetRouter, ReplicaSpec, run_soak
from repro.utils import seed_everything

pytestmark = pytest.mark.slow

REPLICAS = 2
REQUESTS = 90
RATE_QPS = 150.0
SCENES_PER_SCENARIO = 5
MODEL_LATENCY = 0.002
RELOAD_AT = REQUESTS // 2
SLO_P99 = 2.0  # seconds — generous; correctness is the hard assertion


@pytest.fixture(autouse=True)
def _watchdog():
    faulthandler.dump_traceback_later(300.0, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


def test_mixed_scenario_soak_baselines(results_dir, tmp_path):
    seed_everything(20240809)
    trace, answers = build_trace_mix(
        "mixed", num_requests=REQUESTS, rate_qps=RATE_QPS,
        scenes_per_scenario=SCENES_PER_SCENARIO)
    no_target_requests = sum(t.expect_not_found for t in trace)
    assert no_target_requests > 0, (
        "trace mix produced no no-target queries; enlarge the pool")

    spec = ReplicaSpec(
        builder=build_oracle_grounder,
        builder_kwargs={"answers": answers, "latency": MODEL_LATENCY},
        max_batch=8, cache_size=64)
    config = FleetConfig(replicas=REPLICAS, max_queue=256,
                         default_deadline=60.0, router_cache=256)
    manager = CheckpointManager(str(tmp_path))
    checkpoint = manager.save(
        {"version": np.array([2.0]), "bias": np.array([1.0])}, 1)

    with FleetRouter(spec, config) as router:
        assert router.wait_healthy(120.0), "fleet never became healthy"
        report = run_soak(
            router, trace, reload_at=RELOAD_AT,
            reload_checkpoint=checkpoint,
            post_reload_check=lambda r: getattr(r, "version", None) == 2.0)
        router.wait_healthy(30.0)
        report = dataclasses.replace(report, stats=router.stats())

    violations = report.check(slo_p99=SLO_P99,
                              expected_replicas=REPLICAS,
                              scenario_slo_p99=SLO_P99)
    no_target_accuracy = (
        1.0 - report.false_found / max(1, report.no_target_requests))

    lines = [
        f"Mixed scenario soak ({REQUESTS} requests @ {RATE_QPS:.0f} qps, "
        f"{REPLICAS} replicas, reload at #{RELOAD_AT}, "
        f"{MODEL_LATENCY * 1e3:.0f}ms oracle forward)",
        f"  ok/shed/deadline/failed/lost : {report.ok}/{report.shed}/"
        f"{report.deadline}/{report.failed}/{report.lost}",
        f"  no-target queries            : {report.no_target_requests} "
        f"({report.false_found} false-found, "
        f"accuracy {no_target_accuracy:.2%})",
        f"  stale after reload           : {report.stale_served}",
        f"  aggregate p99                : "
        f"{report.stats.latency_p99 * 1e3:8.2f} ms",
    ]
    for name, p99 in sorted(report.scenario_p99.items()):
        lines.append(f"  {name:<28} p99: {p99 * 1e3:8.2f} ms")
    lines.append(
        f"  router cache hit rate        : "
        f"{report.stats.cache_hit_rate:.2%} epoch={report.stats.cache_epoch}")
    write_artifact(results_dir, "scenarios.txt", "\n".join(lines))

    assert not violations, "; ".join(violations)
    assert report.false_found == 0
    assert report.lost == 0
    assert report.stale_served == 0
    assert set(report.scenario_p99) == {"driving", "crowded", "weak"}
