"""Table 2 — overall comparison + generalisation; benchmarks YOLLO inference."""

from conftest import write_artifact

from repro.experiments import table2

import pytest

pytestmark = pytest.mark.slow


def test_table2_overall(context, results_dir, benchmark):
    results = table2.collect(context)
    report = table2.run(context)
    write_artifact(results_dir, "table2.txt", report)

    if context.preset.name != "smoke":
        # The paper's headline shape: one-stage YOLLO beats the
        # two-stage baselines.  At the bench preset's reduced training
        # budget we assert the averaged in-domain comparison (the FULL
        # preset reproduces a per-split win; see EXPERIMENTS.md).
        import numpy as np

        yollo_mean = np.mean(list(results["YOLLO"].values()))
        for kind in table2.BASELINE_KINDS:
            baseline_mean = np.mean(
                [results[kind][column] for column in results["YOLLO"]]
            )
            assert yollo_mean > baseline_mean, (
                f"YOLLO should beat {kind} on average: "
                f"{yollo_mean:.1f} vs {baseline_mean:.1f}"
            )

    _, grounder, _ = context.yollo("RefCOCO")
    sample = context.dataset("RefCOCO")["val"][0]
    benchmark(lambda: grounder.ground_batch([sample]))
