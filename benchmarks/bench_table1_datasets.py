"""Table 1 — dataset statistics; benchmarks dataset generation."""

from conftest import write_artifact

from repro.data import REFCOCO, build_dataset
from repro.experiments import table1

import pytest

pytestmark = pytest.mark.slow


def test_table1_datasets(context, results_dir, benchmark):
    report = table1.run(context)
    write_artifact(results_dir, "table1.txt", report)

    stats = table1.collect(context)
    # RefCOCOg queries are long sentences; RefCOCO(+) are short phrases.
    assert stats["RefCOCOg"]["avg_query_length"] > 2 * stats["RefCOCO"]["avg_query_length"]
    # RefCOCO(+) scenes are denser in same-type distractors than RefCOCOg.
    assert stats["RefCOCO"]["avg_same_type"] > stats["RefCOCOg"]["avg_same_type"]

    benchmark(lambda: build_dataset(REFCOCO.scaled(0.05)))
