"""Table 3 — metric sweep; benchmarks the evaluation pipeline."""

import numpy as np
from conftest import write_artifact

from repro.eval.metrics import accuracy_sweep, pairwise_ious
from repro.experiments import table3

import pytest

pytestmark = pytest.mark.slow


def test_table3_metrics(context, results_dir, benchmark):
    results = table3.collect(context)
    report = table3.run(context)
    write_artifact(results_dir, "table3.txt", report)

    if context.preset.name != "smoke":
        for metrics in results.values():
            # ACC@0.75 <= ACC@0.5 by construction; the paper observes a
            # large drop because rho_high = 0.5 drives anchor labelling.
            assert metrics["ACC@0.75"] <= metrics["ACC@0.5"] + 1e-9
            assert metrics["ACC"] <= metrics["ACC@0.5"] + 1e-9

    rng = np.random.default_rng(0)
    predicted = rng.uniform(0, 40, size=(256, 4))
    predicted[:, 2:] += predicted[:, :2]
    targets = predicted + rng.normal(0, 2, size=predicted.shape)
    benchmark(lambda: accuracy_sweep(pairwise_ious(predicted, targets)))
