"""Router-tier response cache — the cache-hit fast-path benchmark.

The claim, asserted: answering a repeated ``(image, query)`` from the
router-tier :class:`~repro.serve.shared_cache.SharedResponseCache` is at
least ``MIN_SPEEDUP``x faster than the replica round-trip the miss path
pays (pipe hop + queue + simulated fixed-latency forward + pipe hop
back).  The model latency is simulated wall time, so the comparison is
honest on one core: a hit is an in-process dict lookup and never leaves
the router.

Also verifies the invalidation half of the design under load: after a
rolling reload mid-sequence, every response carries the new weights —
the epoch bump makes the warm cache unreachable in O(1) without a
flush message ever racing a request.
"""

import faulthandler
import time

import numpy as np
import pytest
from conftest import write_artifact

from repro.data.refcoco import GroundingSample
from repro.runtime import CheckpointManager
from repro.serve import (
    FleetConfig,
    FleetRouter,
    ReplicaSpec,
    build_latency_grounder,
)
from repro.utils import spawn_rng

pytestmark = pytest.mark.slow

REPLICAS = 2
KEYS = 12
ROUNDS = 6  # repeat passes over the key set (all router-tier hits)
MODEL_LATENCY = 0.01
MIN_SPEEDUP = 5.0


@pytest.fixture(autouse=True)
def _watchdog():
    faulthandler.dump_traceback_later(300.0, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


def _make_pool(count):
    rng = spawn_rng("fleet-cache-pool")
    return [
        GroundingSample(image=rng.random((8, 8, 3)),
                        query=f"cached object {i}", tokens=[],
                        target_box=np.zeros(4), target_index=-1,
                        scene=None, split="bench")
        for i in range(count)
    ]


def test_router_cache_hit_beats_replica_round_trip(results_dir, tmp_path):
    pool = _make_pool(KEYS)
    spec = ReplicaSpec(builder=build_latency_grounder,
                       builder_kwargs={"latency": MODEL_LATENCY},
                       max_batch=1, cache_size=0)
    config = FleetConfig(replicas=REPLICAS, max_queue=256,
                         default_deadline=60.0, router_cache=256)
    manager = CheckpointManager(str(tmp_path))
    checkpoint = manager.save(
        {"version": np.array([3.0]), "bias": np.array([2.0])}, 1)

    with FleetRouter(spec, config) as router:
        assert router.wait_healthy(120.0), "fleet never became healthy"
        router.ground(pool[0].image, "warmup", timeout=60.0)

        # ---- miss path: every key cold, full replica round-trip ----
        start = time.perf_counter()
        for sample in pool:
            router.ground(sample.image, sample.query, timeout=60.0)
        miss_wall = time.perf_counter() - start
        miss_mean = miss_wall / KEYS

        # ---- hit path: same keys, served at the router ----
        start = time.perf_counter()
        for _ in range(ROUNDS):
            for sample in pool:
                router.ground(sample.image, sample.query, timeout=60.0)
        hit_wall = time.perf_counter() - start
        hit_mean = hit_wall / (ROUNDS * KEYS)

        stats = router.stats()
        assert stats.cache_hits == ROUNDS * KEYS, (
            f"expected every repeat to hit the router tier, got "
            f"{stats.cache_hits}")

        # ---- invalidation: reload mid-sequence, zero stale after ----
        router.reload_weights(checkpoint, timeout=120.0)
        stale = sum(
            1 for sample in pool
            if router.ground(sample.image, sample.query,
                             timeout=60.0)[2] != 3.0)
        post_stats = router.stats()

    speedup = miss_mean / hit_mean
    lines = [
        f"Router-tier cache ({KEYS} keys x {ROUNDS} repeat rounds, "
        f"{REPLICAS} replicas, {MODEL_LATENCY * 1e3:.0f}ms simulated "
        f"forward, replica LRUs off)",
        f"  miss (replica round-trip): {miss_mean * 1e3:8.3f} ms/req",
        f"  hit  (router tier)       : {hit_mean * 1e3:8.3f} ms/req",
        f"  speedup                  : {speedup:8.1f}x  "
        f"(required >= {MIN_SPEEDUP:.0f}x)",
        f"  hit rate                 : "
        f"{post_stats.cache_hit_rate:8.2%}  "
        f"({post_stats.cache_hits} hits / {post_stats.cache_misses} "
        f"misses)",
        f"  reload epoch bump        : epoch={post_stats.cache_epoch}, "
        f"stale responses after reload: {stale}",
    ]
    write_artifact(results_dir, "fleet_cache.txt", "\n".join(lines))

    assert stale == 0, f"{stale} stale response(s) after the reload"
    assert post_stats.cache_epoch == 1
    assert speedup >= MIN_SPEEDUP, (
        f"router-tier hit only {speedup:.1f}x faster than a replica "
        f"round-trip")
