"""Distributed training throughput — 1 worker vs 4 workers.

Runs the same fixed-global-batch YOLLO training step through
:class:`repro.dist.WorkerGroup` at world sizes 1 and 4 and compares
steady-state step throughput (global samples/second, first step dropped
as warmup).  The slot decomposition is identical at every world size —
the workers split the same work, so on a machine with >= 4 usable cores
the 4-worker run must deliver at least ``MIN_SPEEDUP`` more throughput.

On fewer cores the speedup assertion is skipped: four workers
time-slicing one CPU cannot beat one process doing the same arithmetic
(the collective adds overhead but no parallelism).  The measured
numbers and the core count are recorded in the artifact either way.
"""

import os

from conftest import write_artifact

from repro.dist import DistConfig, WorkerGroup, WorkerSpec, build_yollo_task, warm_backbone

import pytest

pytestmark = pytest.mark.dist

WORLD_SIZES = (1, 4)
GRAD_SHARDS = 4
ITERATIONS = 6
BATCH_SIZE = 16
MIN_SPEEDUP = 1.5


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _run(world_size: int):
    spec = WorkerSpec(
        builder=build_yollo_task,
        task_kwargs=dict(
            dataset_name="RefCOCO", scale=0.2, grad_shards=GRAD_SHARDS,
            iterations=ITERATIONS, eval_every=0, backbone="tiny",
            pretrain_steps=1,
            config_overrides=dict(batch_size=BATCH_SIZE),
        ),
        dist=DistConfig(grad_shards=GRAD_SHARDS, timeout=300.0),
        seed=0,
        warmup=warm_backbone,
        warmup_kwargs=dict(name="tiny", pretrain_steps=1),
    )
    report = WorkerGroup(spec, world_size=world_size).run()
    # Steady-state per-step seconds on rank 0 (every rank's step is the
    # same collective); drop the first step, which pays warmup costs.
    steps = report.rank_metrics[0]["histograms"]["dist.step_seconds"]
    steady = steps[1:] or steps
    mean_step = sum(steady) / len(steady)
    return {
        "world": world_size,
        "wall": report.wall_seconds,
        "mean_step_s": mean_step,
        "throughput": BATCH_SIZE / mean_step,
    }


def test_dist_scaling(results_dir):
    cores = _usable_cores()
    rows = [_run(world) for world in WORLD_SIZES]
    base = rows[0]["throughput"]
    speedup = rows[-1]["throughput"] / base

    lines = [
        "Distributed training scaling (fixed global batch "
        f"of {BATCH_SIZE}, {ITERATIONS} steps, grad_shards={GRAD_SHARDS})",
        f"usable cores: {cores}",
        "",
        "workers | mean step (s) | global samples/s | speedup",
        "--------+---------------+------------------+--------",
    ]
    for row in rows:
        lines.append(
            f"{row['world']:7d} | {row['mean_step_s']:13.3f} | "
            f"{row['throughput']:16.2f} | {row['throughput'] / base:7.2f}x"
        )
    lines.append("")
    if cores >= max(WORLD_SIZES):
        lines.append(
            f"assertion: {max(WORLD_SIZES)}-worker speedup >= "
            f"{MIN_SPEEDUP}x (cores available)"
        )
    else:
        lines.append(
            f"assertion skipped: {cores} usable core(s) < "
            f"{max(WORLD_SIZES)} workers — parallel speedup is not "
            "physically available on this machine; numbers above are "
            "the honest single-core measurement"
        )
    write_artifact(results_dir, "dist_scaling.txt", "\n".join(lines) + "\n")

    for row in rows:
        assert row["mean_step_s"] > 0
    if cores >= max(WORLD_SIZES):
        assert speedup >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x at {max(WORLD_SIZES)} workers, "
            f"got {speedup:.2f}x"
        )
