"""Table 4 — Rel2Att ablations; benchmarks one Rel2Att forward pass."""

import numpy as np
from conftest import write_artifact

from repro.autograd import Tensor, no_grad
from repro.experiments import table4

import pytest

pytestmark = pytest.mark.slow


def test_table4_ablation(context, results_dir, benchmark):
    results = table4.collect(context)
    report = table4.run(context)
    write_artifact(results_dir, "table4.txt", report)

    if context.preset.name != "smoke":
        full = results["YOLLO"]
        no_co = results["YOLLO (w/o co-attention)"]
        # Removing co-attention makes the model query-blind: accuracy
        # must collapse below the full model on average.
        assert np.mean(list(no_co.values())) < np.mean(list(full.values()))

    model, _, _ = context.yollo("RefCOCO")
    block = model.rel2att.blocks[0]
    rng = np.random.default_rng(0)
    v = Tensor(rng.normal(size=(1, model.encoder.num_regions, model.config.d_model)))
    t = Tensor(rng.normal(size=(1, 6, model.config.d_model)))

    def rel2att_forward():
        with no_grad():
            return block(v, t)

    benchmark(rel2att_forward)
