"""Figure 4 — training curves; benchmarks one YOLLO training step."""

import numpy as np
from conftest import write_artifact

from repro.core.trainer import TrainingHistory, YolloTrainer
from repro.data.loader import encode_batch
from repro.experiments import figure4

import pytest

pytestmark = pytest.mark.slow


def test_figure4_curves(context, results_dir, benchmark):
    curves = figure4.collect(context)
    report = figure4.run(context)
    write_artifact(results_dir, "figure4.txt", report)

    if context.preset.name != "smoke":
        for curve in curves.values():
            assert curve.values, "training curves must have recorded points"
            # Fast convergence claim: 95% of best reached within budget.
            assert curve.convergence_iteration() <= curve.iterations[-1]

    model, _, _ = context.yollo("RefCOCO")
    dataset = context.dataset("RefCOCO")
    trainer = YolloTrainer(model, dataset)
    batch = encode_batch(dataset["train"][:8], dataset.vocab,
                         model.config.max_query_length)
    history = TrainingHistory()
    benchmark(lambda: trainer._step(batch, history))
