"""Extra design-choice ablations beyond the paper's Table 4.

Probes called out in DESIGN.md: Rel2Att stack depth, the rho_high
anchor-labelling threshold (the paper's Section 4.3 discussion), and the
backbone family swap (ResNet vs VGG footnote).  Each arm trains at the
ablation budget on RefCOCO.
"""

from conftest import write_artifact

from repro.eval import format_table

import pytest

pytestmark = pytest.mark.slow

ARMS = (
    ("YOLLO (3 Rel2Att, resnet)", "extra-base", {}),
    ("YOLLO (1 Rel2Att)", "extra-depth1", {"num_rel2att": 1}),
    ("YOLLO (rho_high=0.7)", "extra-rho07", {"rho_high": 0.7}),
    ("YOLLO (VGG backbone)", "extra-vgg", {"backbone": "vgg"}),
)

DATASET = "RefCOCO"


def test_ablation_extras(context, results_dir, benchmark):
    rows = []
    reports = {}
    for label, tag, overrides in ARMS:
        _, grounder, _ = context.yollo(
            DATASET, tag=tag, epochs=context.preset.ablation_epochs, **overrides
        )
        report = context.evaluate(grounder, f"yollo-{tag}", DATASET, "val")
        reports[label] = report
        rows.append([label, report.acc_at_50 * 100, report.acc_at_75 * 100,
                     report.miou * 100])

    table = format_table(
        ["Variant", "ACC@0.5", "ACC@0.75", "MIOU"],
        rows,
        title="Extra ablations (RefCOCO val, equal training budget)",
    )
    write_artifact(results_dir, "ablation_extras.txt", table)

    _, grounder, _ = context.yollo(DATASET, tag="extra-base",
                                   epochs=context.preset.ablation_epochs)
    sample = context.dataset(DATASET)["val"][0]
    benchmark(lambda: grounder.ground_batch([sample]))
