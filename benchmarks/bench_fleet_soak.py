"""Fleet soak + scaling — the fault-tolerance benchmark for serving.

Two claims, both asserted:

1. **Soak under faults**: a 3-replica fleet absorbing a timed trace
   with one deterministically injected replica crash *and* one rolling
   hot weight reload mid-run resolves **every** request (success or
   typed rejection — zero lost), restores the replica count, and holds
   a p99 latency SLO.
2. **Scaling**: the same burst trace through 3 replicas finishes at
   least ``MIN_SPEEDUP``x faster than a single ``ServeEngine`` serving
   the same fixed-latency model.  The replicas' cost is model *latency*
   (simulated forward wall time), which overlaps across processes even
   on one core — the honest scaling model for a router fronting
   fixed-latency model servers.
"""

import faulthandler
import time

import numpy as np
import pytest
from conftest import write_artifact

from repro.data.refcoco import GroundingSample
from repro.runtime import CheckpointManager, FaultPlan
from repro.serve import (
    FleetConfig,
    FleetRouter,
    LatencyGrounder,
    ReplicaSpec,
    ServeEngine,
    build_latency_grounder,
    run_soak,
    timed_trace,
)
from repro.utils import spawn_rng

pytestmark = pytest.mark.slow

REPLICAS = 3
SOAK_REQUESTS = 150
SOAK_RATE_QPS = 200.0
MODEL_LATENCY = 0.004
SLO_P99 = 2.0
SCALING_REQUESTS = 60
SCALING_LATENCY = 0.02
MIN_SPEEDUP = 2.0


@pytest.fixture(autouse=True)
def _watchdog():
    faulthandler.dump_traceback_later(300.0, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


def _make_pool(count=8):
    rng = spawn_rng("fleet-bench-pool")
    return [
        GroundingSample(image=rng.random((8, 8, 3)),
                        query=f"benchmark object {i}", tokens=[],
                        target_box=np.zeros(4), target_index=-1,
                        scene=None, split="bench")
        for i in range(count)
    ]


def _spec(latency, fault_plan=None, max_batch=4):
    return ReplicaSpec(builder=build_latency_grounder,
                       builder_kwargs={"latency": latency},
                       max_batch=max_batch, cache_size=0,
                       fault_plan=fault_plan)


def test_fleet_soak_and_scaling(results_dir, tmp_path):
    pool = _make_pool()

    # ---- 1. fault-injected soak: crash + rolling reload under load ----
    manager = CheckpointManager(str(tmp_path))
    checkpoint = manager.save(
        {"version": np.array([2.0]), "bias": np.array([1.0])}, 1)
    plan = FaultPlan(kill_replica_on_request={0: 5})
    config = FleetConfig(replicas=REPLICAS, max_queue=256,
                         default_deadline=30.0, heartbeat_timeout=3.0)
    trace = timed_trace(pool, SOAK_REQUESTS, rate_qps=SOAK_RATE_QPS,
                        rng=spawn_rng("fleet-bench-trace"))
    with FleetRouter(_spec(MODEL_LATENCY, fault_plan=plan),
                     config) as router:
        assert router.wait_healthy(120.0), "fleet never became healthy"
        report = run_soak(router, trace, reload_at=SOAK_REQUESTS // 2,
                          reload_checkpoint=checkpoint,
                          settle_timeout=120.0)
        assert router.wait_healthy(120.0), "replica count not restored"
        stats = router.stats()
        # a post-reload response proves the new weights actually serve
        box = router.ground(pool[0].image, pool[0].query, timeout=60.0)
    assert box[2] == 2.0, "reloaded weights not observable in responses"
    assert stats.respawns >= 1, "injected crash produced no respawn"
    assert stats.reloads == 1
    violations = report.check(slo_p99=SLO_P99)
    assert violations == [], violations
    assert report.lost == 0 and report.resolved == SOAK_REQUESTS

    # ---- 2. scaling: 3 replicas vs one engine, same burst trace ----
    burst = timed_trace(pool, SCALING_REQUESTS, rate_qps=1e9,
                        rng=spawn_rng("fleet-bench-burst"))
    engine = ServeEngine(LatencyGrounder(latency=SCALING_LATENCY),
                         max_batch=1, cache_size=0)
    with engine:
        engine.ground(burst[0].image, burst[0].query)  # warm the worker
        start = time.perf_counter()
        futures = [engine.submit(r.image, r.query) for r in burst]
        for future in futures:
            future.result(timeout=120.0)
        single_wall = time.perf_counter() - start
    single_qps = SCALING_REQUESTS / single_wall

    # router cache OFF: the burst trace repeats ~30% of its requests,
    # and answering those at the router would flatter the scaling claim
    # (it is measured separately in bench_fleet_cache.py)
    scale_config = FleetConfig(replicas=REPLICAS, max_queue=256,
                               default_deadline=60.0, router_cache=0)
    with FleetRouter(_spec(SCALING_LATENCY, max_batch=1),
                     scale_config) as router:
        assert router.wait_healthy(120.0)
        router.ground(burst[0].image, burst[0].query)  # warm all paths
        start = time.perf_counter()
        futures = [router.submit(r.image, r.query) for r in burst]
        for future in futures:
            future.result(timeout=120.0)
        fleet_wall = time.perf_counter() - start
    fleet_qps = SCALING_REQUESTS / fleet_wall
    speedup = fleet_qps / single_qps

    lines = [
        f"Fleet soak ({SOAK_REQUESTS} requests @ {SOAK_RATE_QPS:.0f} qps, "
        f"{REPLICAS} replicas, 1 injected crash, 1 rolling reload)",
        "  " + report.render().replace("\n", "\n  "),
        "",
        f"Fleet scaling ({SCALING_REQUESTS}-request burst, "
        f"{SCALING_LATENCY * 1e3:.0f}ms simulated forward, max_batch=1)",
        f"  single engine : {single_qps:8.1f} qps  ({single_wall:.3f}s)",
        f"  {REPLICAS}-replica fleet: {fleet_qps:8.1f} qps  "
        f"({fleet_wall:.3f}s)",
        f"  speedup       : {speedup:.2f}x  (required >= "
        f"{MIN_SPEEDUP:.1f}x)",
    ]
    write_artifact(results_dir, "fleet_soak.txt", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"{REPLICAS}-replica fleet only {speedup:.2f}x over one engine"
    )
