"""Profiling-off overhead contract + the committed hot-op baseline.

Two guarantees back the `repro.obs` design:

1. **Off means off.**  With no profiler active, the only instrumentation
   in the hot path is the inactive ``trace_span`` check (one global list
   read per span).  We measure that per-span cost directly with a tight
   loop, count how many spans one real training step emits, and assert
   the implied per-step overhead is under 2% of the step's wall time.
   Measuring the microcost instead of diffing two full timed runs keeps
   the assertion deterministic — run-to-run step-time noise on a busy
   machine easily exceeds 2% on its own.
2. **Patches come off.**  After a profiling session every autograd
   binding must be the pristine original, so the off path is
   byte-identical to an uninstrumented build.

The full profile of a train step is written to
``results/profile_hotops_yollo.txt`` — the baseline future perf PRs
must beat.
"""

import sys
import time

import pytest
from conftest import write_artifact

from repro.core import YolloConfig, YolloModel, YolloTrainer
from repro.data import REFCOCO, build_dataset
from repro.obs import SpanTotals, collect_spans, profile, trace_span
from repro.obs.profiler import _FUNCTION_OPS, _TENSOR_METHODS
from repro.autograd.tensor import Tensor
from repro.utils import seed_everything

pytestmark = pytest.mark.slow

MAX_OVERHEAD = 0.02
SPAN_MICROLOOP = 20_000
STEP_REPEATS = 3


def _make_trainer() -> YolloTrainer:
    seed_everything(7)
    dataset = build_dataset(REFCOCO.scaled(0.1))
    cfg = YolloConfig(
        backbone="tiny", d_model=16, d_rel=24, ffn_hidden=24, head_hidden=24,
        num_rel2att=2, batch_size=8,
        max_query_length=max(6, dataset.max_query_length),
    )
    model = YolloModel(cfg, vocab_size=len(dataset.vocab))
    trainer = YolloTrainer(model, dataset, cfg)
    trainer.begin_run(iterations=16)
    return trainer


def _one_step(trainer: YolloTrainer) -> None:
    loss = trainer.forward_backward()
    trainer.apply_step(loss)


def test_profile_overhead_under_two_percent(results_dir):
    trainer = _make_trainer()
    _one_step(trainer)  # warm allocation paths

    # Per-span cost with nothing collecting (the profiling-off path).
    start = time.perf_counter()
    for _ in range(SPAN_MICROLOOP):
        with trace_span("off"):
            pass
    span_cost = (time.perf_counter() - start) / SPAN_MICROLOOP

    # How many spans one real step emits.
    counter = SpanTotals()
    with collect_spans(counter):
        _one_step(trainer)
    spans_per_step = sum(counter.calls.values())
    assert spans_per_step > 0, "training step emitted no spans"

    # Un-instrumented step wall time (best of a few repeats).
    step_seconds = min(
        _timed(_one_step, trainer) for _ in range(STEP_REPEATS)
    )

    overhead = span_cost * spans_per_step / step_seconds
    report = [
        "Profiling-off overhead (op patches removed, spans inert)",
        f"  per-span cost   : {span_cost * 1e9:8.1f} ns",
        f"  spans per step  : {spans_per_step:8d}",
        f"  step wall time  : {step_seconds * 1e3:8.2f} ms",
        f"  implied overhead: {overhead * 100:8.4f} %  (budget {MAX_OVERHEAD * 100:.0f} %)",
    ]
    write_artifact(results_dir, "profile_overhead.txt", "\n".join(report))
    assert overhead < MAX_OVERHEAD, (
        f"inactive spans cost {overhead * 100:.3f}% of a training step "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)"
    )


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def test_patches_fully_removed_after_profiling():
    trainer = _make_trainer()
    with profile() as prof:
        _one_step(trainer)
    assert prof.op_stats(), "profiler saw no ops"

    for attr in _TENSOR_METHODS:
        assert not hasattr(getattr(Tensor, attr), "_obs_original"), (
            f"Tensor.{attr} still wrapped after profiling"
        )
    for label in _FUNCTION_OPS:
        for module in list(sys.modules.values()):
            if module is None or not getattr(module, "__name__", "").startswith("repro"):
                continue
            bound = getattr(module, label, None)
            assert not hasattr(bound, "_obs_original"), (
                f"{module.__name__}.{label} still wrapped after profiling"
            )


def test_hot_op_baseline_report(results_dir):
    trainer = _make_trainer()
    _one_step(trainer)  # warm
    with profile() as prof:
        _one_step(trainer)

    stats = prof.op_stats()
    assert stats, "no op events recorded for the baseline report"
    names = {stat.name for stat in stats}
    assert "conv2d" in names and "matmul" in names, (
        f"expected conv2d and matmul among hot ops, saw {sorted(names)}"
    )
    header = (
        "YOLLO tiny-backbone train-step hot-op baseline "
        "(batch 8, RefCOCO @0.1)\n"
        "Future perf PRs: beat the conv2d/matmul totals below.\n"
    )
    write_artifact(
        results_dir, "profile_hotops_yollo.txt", header + "\n" + prof.render(top=15)
    )
