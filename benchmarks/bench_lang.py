"""Structured query understanding — parse throughput and the
compositional soak.

Two benchmarks for the :mod:`repro.lang` subsystem:

* parse throughput (queries/sec) over expressions drawn from every
  registered scenario, with the non-trivial-parse rate alongside — a
  regression here means the recursive-descent grammar stopped covering
  a generator's surface forms;
* the ``compositional`` trace mix soaked against an oracle replica
  fleet with a rolling weight reload mid-soak: anaphora-driven
  no-target queries must come back ``not_found`` (a single false
  "found" fails), and per-scenario p99 is recorded.

Numbers land in ``results/lang.txt`` and the consolidated
``results/summary.json`` via ``run_all.py``.
"""

import dataclasses
import faulthandler
import time

import numpy as np
import pytest
from conftest import write_artifact

from repro.lang import clause_token_masks, parse
from repro.runtime import CheckpointManager
from repro.scenarios import (
    available_scenarios,
    build_oracle_grounder,
    build_trace_mix,
    get_scenario,
)
from repro.serve import FleetConfig, FleetRouter, ReplicaSpec, run_soak
from repro.utils import seed_everything

pytestmark = pytest.mark.slow

SCENES_PER_SCENARIO = 4
PARSE_REPEATS = 20
MAX_LENGTH = 24

REPLICAS = 2
REQUESTS = 80
RATE_QPS = 150.0
MODEL_LATENCY = 0.002
RELOAD_AT = REQUESTS // 2
SLO_P99 = 2.0  # seconds — generous; correctness is the hard assertion


@pytest.fixture(autouse=True)
def _watchdog():
    faulthandler.dump_traceback_later(300.0, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


def test_parse_throughput(results_dir):
    seed_everything(20250810)
    queries = []
    for name in available_scenarios():
        samples = get_scenario(name).eval_samples(SCENES_PER_SCENARIO)
        queries.extend(sample.query for sample in samples)
    assert queries

    parse(queries[0])  # warm imports outside the timed region
    start = time.perf_counter()
    trees = []
    for _ in range(PARSE_REPEATS):
        trees = [parse(query) for query in queries]
    elapsed = time.perf_counter() - start
    parsed = len(queries) * PARSE_REPEATS
    throughput = parsed / elapsed

    non_trivial = sum(not tree.is_trivial for tree in trees)
    conditioned = sum(
        clause_token_masks(tree, MAX_LENGTH) is not None for tree in trees)

    lines = [
        f"Parse throughput ({len(queries)} scenario expressions x "
        f"{PARSE_REPEATS} repeats)",
        f"  parse throughput             : {throughput:10.0f} queries/sec",
        f"  non-trivial parse rate       : "
        f"{non_trivial / len(trees):.2%}",
        f"  clause-conditioned fraction  : "
        f"{conditioned / len(trees):.2%}",
    ]
    write_artifact(results_dir, "lang.txt", "\n".join(lines))

    # Every scenario expression must parse to a non-trivial tree.
    assert non_trivial == len(trees)
    assert throughput > 100.0


def test_compositional_soak(results_dir, tmp_path):
    seed_everything(20250810)
    trace, answers = build_trace_mix(
        "compositional", num_requests=REQUESTS, rate_qps=RATE_QPS,
        scenes_per_scenario=SCENES_PER_SCENARIO)
    no_target_requests = sum(t.expect_not_found for t in trace)
    assert no_target_requests > 0, (
        "compositional trace produced no anaphoric no-target queries")

    spec = ReplicaSpec(
        builder=build_oracle_grounder,
        builder_kwargs={"answers": answers, "latency": MODEL_LATENCY},
        max_batch=8, cache_size=64)
    config = FleetConfig(replicas=REPLICAS, max_queue=256,
                         default_deadline=60.0, router_cache=256)
    manager = CheckpointManager(str(tmp_path))
    checkpoint = manager.save(
        {"version": np.array([2.0]), "bias": np.array([1.0])}, 1)

    with FleetRouter(spec, config) as router:
        assert router.wait_healthy(120.0), "fleet never became healthy"
        report = run_soak(
            router, trace, reload_at=RELOAD_AT,
            reload_checkpoint=checkpoint,
            post_reload_check=lambda r: getattr(r, "version", None) == 2.0)
        router.wait_healthy(30.0)
        report = dataclasses.replace(report, stats=router.stats())

    violations = report.check(slo_p99=SLO_P99,
                              expected_replicas=REPLICAS,
                              scenario_slo_p99=SLO_P99)
    no_target_accuracy = (
        1.0 - report.false_found / max(1, report.no_target_requests))

    lines = [
        f"Compositional soak ({REQUESTS} requests @ {RATE_QPS:.0f} qps, "
        f"{REPLICAS} replicas, reload at #{RELOAD_AT})",
        f"  ok/shed/deadline/failed/lost : {report.ok}/{report.shed}/"
        f"{report.deadline}/{report.failed}/{report.lost}",
        f"  no-target (anaphora) queries : {report.no_target_requests} "
        f"({report.false_found} false-found, "
        f"accuracy {no_target_accuracy:.2%})",
        f"  stale after reload           : {report.stale_served}",
        f"  aggregate p99                : "
        f"{report.stats.latency_p99 * 1e3:8.2f} ms",
    ]
    for name, p99 in sorted(report.scenario_p99.items()):
        lines.append(f"  {name:<28} p99: {p99 * 1e3:8.2f} ms")
    write_artifact(results_dir, "lang_soak.txt", "\n".join(lines))

    assert not violations, "; ".join(violations)
    assert report.false_found == 0
    assert report.lost == 0
    assert report.stale_served == 0
    assert set(report.scenario_p99) == {"compositional"}
