"""Shared fixtures for the benchmark suite.

The session-scoped :func:`context` fixture owns all trained models; the
first run at a given preset trains everything (tens of minutes at the
default ``bench`` preset on one core), later runs replay from the disk
cache in seconds.  Select the preset with ``REPRO_PRESET``
(smoke / bench / full).
"""

import os

import pytest

from repro.experiments import ExperimentContext, get_preset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext(preset=get_preset())


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_artifact(results_dir: str, name: str, content: str) -> None:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    path = os.path.join(results_dir, name)
    with open(path, "w") as handle:
        handle.write(content + "\n")
    print("\n" + content)
