"""Checkpoint overhead — cost of the fault-tolerant runtime layer.

Trains the same small YOLLO configuration under the supervisor at
``checkpoint_every`` in {0, 10, 50} and reports per-checkpoint wall
time plus the steady-state training overhead relative to the
checkpoint-free run, so future PRs can show the runtime layer stays
off the hot path.
"""

import os
import shutil
import tempfile

from conftest import write_artifact

from repro.core import YolloConfig, YolloModel, YolloTrainer
from repro.data import REFCOCO, build_dataset
from repro.eval.reporting import format_table
from repro.runtime import TrainingSupervisor
from repro.utils import seed_everything

import pytest

pytestmark = pytest.mark.slow

ITERATIONS = 50
CADENCES = (0, 10, 50)


def _make_trainer():
    seed_everything(3)
    dataset = build_dataset(REFCOCO.scaled(0.05))
    cfg = YolloConfig(
        backbone="tiny", d_model=16, d_rel=24, ffn_hidden=24, head_hidden=24,
        num_rel2att=2, batch_size=8,
        max_query_length=max(6, dataset.max_query_length),
    )
    model = YolloModel(cfg, vocab_size=len(dataset.vocab))
    return YolloTrainer(model, dataset, cfg)


def test_checkpoint_overhead(results_dir):
    rows = []
    baseline_wall = None
    for cadence in CADENCES:
        trainer = _make_trainer()
        trainer.begin_run(iterations=ITERATIONS)
        workdir = tempfile.mkdtemp(prefix="ckpt-bench-")
        try:
            supervisor = TrainingSupervisor(
                trainer,
                checkpoint_dir=workdir if cadence else None,
                checkpoint_every=cadence,
            )
            report = supervisor.run()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        assert report.iterations == ITERATIONS
        if cadence == 0:
            baseline_wall = report.wall_seconds
        per_write_ms = (
            report.checkpoint_seconds / report.checkpoint_writes * 1000.0
            if report.checkpoint_writes else 0.0
        )
        overhead = (
            (report.wall_seconds - baseline_wall) / baseline_wall * 100.0
            if baseline_wall else 0.0
        )
        rows.append([
            str(cadence) if cadence else "off",
            report.checkpoint_writes,
            per_write_ms,
            report.wall_seconds,
            overhead,
        ])

    table = format_table(
        ["checkpoint_every", "writes", "ms/write", "wall s", "overhead %"],
        rows,
        title=f"Checkpoint overhead ({ITERATIONS} iterations, small YOLLO)",
    )
    write_artifact(results_dir, "checkpoint_overhead.txt", table)

    # The runtime layer must stay off the hot path: even the densest
    # cadence may not dominate the run.
    densest = rows[1]
    assert densest[3] < 3.0 * baseline_wall, (
        f"checkpointing every 10 iterations tripled the wall time: "
        f"{densest[3]:.2f}s vs {baseline_wall:.2f}s"
    )
