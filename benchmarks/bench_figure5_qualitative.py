"""Figure 5 — qualitative attention panels; benchmarks the viz pipeline."""

import os

import numpy as np
from conftest import write_artifact

from repro.experiments import figure5
from repro.viz import overlay_attention, render_attention_ascii

import pytest

pytestmark = pytest.mark.slow


def test_figure5_qualitative(context, results_dir, benchmark):
    ppm_dir = os.path.join(results_dir, "figure5")
    report = figure5.run(context, num_panels=4, ppm_dir=ppm_dir)
    write_artifact(results_dir, "figure5.txt", report)
    assert any(name.endswith(".ppm") for name in os.listdir(ppm_dir))

    rng = np.random.default_rng(0)
    image = rng.random((3, 48, 72))
    attention = rng.random((6, 9))

    def render():
        overlay_attention(image, attention)
        return render_attention_ascii(attention)

    benchmark(render)
