"""Model zoo — per-preset accuracy/latency matrix and heterogeneous fleet.

Two legs, both landing in ``results/zoo.txt``:

* **Matrix** — every fast-tier preset trains briefly on synthetic
  RefCOCO, then reports ACC@0.5 / MIoU and eager-vs-compiled per-query
  latency.  The point is not absolute accuracy (one epoch at toy scale)
  but that every registry entry earns its slot: all presets train,
  evaluate, and compile bit-exactly, and the variants genuinely differ.
* **Heterogeneous soak** — two presets behind one :class:`FleetRouter`
  with model-tagged requests and the preset-keyed shared cache.  Every
  response must be bit-identical to the answer a single-engine
  deployment of its preset would give (zero cross-preset serves).

The consolidated ``results/summary.json`` picks this up via
``run_all.py``.
"""

import dataclasses
import faulthandler
import time

import numpy as np
import pytest
from conftest import write_artifact

from repro.core import Grounder, YolloTrainer, responses_equal
from repro.data import REFCOCO, build_dataset
from repro.eval import evaluate_grounder
from repro.serve import (
    FleetConfig, FleetRouter, ReplicaSpec, image_digest, run_soak,
    timed_trace,
)
from repro.serve.engine import _make_sample
from repro.utils import seed_everything
from repro.zoo import (
    available_presets, build_model, build_preset_grounder, get_preset,
    lower_config,
)

pytestmark = pytest.mark.slow

SEED = 20260809
MATRIX_SCALE = 0.05
TRAIN_EPOCHS = 1
EVAL_SAMPLES = 24
LATENCY_REPEATS = 5

SOAK_PRESETS = ("tiny", "tiny-word2pix")
SOAK_SCALE = 0.03
SOAK_REQUESTS = 24
SOAK_RATE_QPS = 200.0


@pytest.fixture(autouse=True)
def _watchdog():
    faulthandler.dump_traceback_later(600.0, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


def _per_query_ms(grounder, sample):
    grounder([sample])  # warm up (and, when compiled, trace the plan)
    best = min(
        _timed(grounder, sample) for _ in range(LATENCY_REPEATS))
    return best * 1e3


def _timed(grounder, sample):
    started = time.perf_counter()
    grounder([sample])
    return time.perf_counter() - started


def test_zoo_matrix_and_heterogeneous_soak(results_dir):
    lines = [
        f"Model zoo matrix (synthetic RefCOCO @ scale {MATRIX_SCALE}, "
        f"{TRAIN_EPOCHS} epoch, {EVAL_SAMPLES} val samples, "
        f"best of {LATENCY_REPEATS} single-query timings)",
        f"  {'preset':<20} {'ACC@0.5':>8} {'MIoU':>7} "
        f"{'eager ms':>9} {'compiled ms':>12} {'speedup':>8}",
    ]

    seed_everything(SEED)
    dataset = build_dataset(REFCOCO.scaled(MATRIX_SCALE))
    maxlen = max(8, dataset.max_query_length)
    val = list(dataset["val"])[:EVAL_SAMPLES]
    assert val, "scaled dataset produced no validation samples"
    boxes_by_preset = {}

    for name in available_presets(tier="fast"):
        seed_everything(SEED)
        config = lower_config(name, max_query_length=maxlen)
        model = build_model(name, vocab_size=len(dataset.vocab),
                            max_query_length=maxlen)
        YolloTrainer(model, dataset, config).train(epochs=TRAIN_EPOCHS)
        model.eval()
        grounder = Grounder(model, dataset.vocab)

        report = evaluate_grounder(grounder, val)
        eager_ms = _per_query_ms(grounder, val[0])
        eager_boxes = grounder(val[:4])
        grounder.compile()
        compiled_ms = _per_query_ms(grounder, val[0])
        compiled_boxes = grounder(val[:4])
        grounder.uncompile()
        assert np.array_equal(eager_boxes, compiled_boxes), (
            f"preset {name}: compiled inference diverged from eager")

        boxes_by_preset[name] = eager_boxes.tobytes()
        lines.append(
            f"  {name:<20} {report.acc_at_50:>8.3f} {report.miou:>7.3f} "
            f"{eager_ms:>9.2f} {compiled_ms:>12.2f} "
            f"{eager_ms / compiled_ms:>7.2f}x")

    assert len(boxes_by_preset) >= 5
    assert len(set(boxes_by_preset.values())) > 1, (
        "every preset predicted identical boxes — the variants are not real")

    lines += _heterogeneous_soak_leg()
    write_artifact(results_dir, "zoo.txt", "\n".join(lines))


def _heterogeneous_soak_leg():
    preset_kwargs = dict(dataset_name="RefCOCO", scale=SOAK_SCALE,
                         pretrain_steps=1)
    specs = [
        ReplicaSpec(builder=build_preset_grounder,
                    builder_kwargs=dict(preset_kwargs, preset=name),
                    model_id=name, max_batch=8, cache_size=64,
                    seed=SEED, dtype="float64")
        for name in SOAK_PRESETS
    ]

    seed_everything(SEED)
    dataset = build_dataset(REFCOCO.scaled(SOAK_SCALE))
    pool = list(dataset["val"]) or list(dataset["train"])
    trace = timed_trace(pool, SOAK_REQUESTS, rate_qps=SOAK_RATE_QPS,
                        repeat_fraction=0.5)
    for index, request in enumerate(trace):
        request.model = SOAK_PRESETS[index % len(SOAK_PRESETS)]

    # Per preset, the answer a single-engine deployment would give.
    expected = {}
    for name in SOAK_PRESETS:
        seed_everything(SEED)
        reference = build_preset_grounder(preset=name, **preset_kwargs)
        for request in trace:
            key = (name, image_digest(request.image), str(request.query))
            if request.model == name and key not in expected:
                expected[key] = reference(
                    [_make_sample(request.image, request.query)])[0]

    def content_check(request, result):
        key = (request.model, image_digest(request.image),
               str(request.query))
        return responses_equal(expected[key], result)

    config = FleetConfig(replicas=len(SOAK_PRESETS), max_queue=256,
                         default_deadline=60.0, router_cache=256)
    with FleetRouter(specs, config) as router:
        assert router.wait_healthy(120.0), "fleet never became healthy"
        report = run_soak(router, trace, content_check=content_check)
        router.wait_healthy(30.0)
        report = dataclasses.replace(report, stats=router.stats())

    violations = report.check(expected_replicas=len(SOAK_PRESETS))
    assert not violations, "; ".join(violations)
    assert report.lost == 0
    assert report.content_mismatches == 0, (
        "a fleet response diverged from its preset's single-engine answer")

    return [
        "",
        f"Heterogeneous fleet soak ({' + '.join(SOAK_PRESETS)}, "
        f"{SOAK_REQUESTS} requests @ {SOAK_RATE_QPS:.0f} qps, "
        f"one replica per preset)",
        f"  ok/shed/deadline/failed/lost : {report.ok}/{report.shed}/"
        f"{report.deadline}/{report.failed}/{report.lost}",
        f"  cross-preset serves          : {report.content_mismatches} "
        f"(every response bit-identical to its preset's engine)",
        f"  router cache hit rate        : "
        f"{report.stats.cache_hit_rate:.2%} epoch={report.stats.cache_epoch}",
        f"  aggregate p99                : "
        f"{report.stats.latency_p99 * 1e3:8.2f} ms",
    ]
