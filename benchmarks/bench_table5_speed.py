"""Table 5 — inference latency; benchmarks YOLLO single-query inference."""

from conftest import write_artifact

from repro.experiments import table5

import pytest

pytestmark = pytest.mark.slow


def test_table5_speed(context, results_dir, benchmark):
    results = table5.collect(context)
    report = table5.run(context)
    write_artifact(results_dir, "table5.txt", report)

    if context.preset.name != "smoke":
        yollo = results["YOLLO (ResNet-50 C4 backbone)"].total_mean
        for kind in ("speaker", "listener", "speaker+listener"):
            two_stage = results[kind].total_mean
            # The paper reports 20-30x; our scaled system must show the
            # same order-of-magnitude gap (at least several-fold).
            assert two_stage > 3.0 * yollo, (
                f"{kind} should be much slower than YOLLO: "
                f"{two_stage * 1000:.1f}ms vs {yollo * 1000:.1f}ms"
            )

    _, grounder, _ = context.yollo("RefCOCO")
    sample = context.dataset("RefCOCO")["val"][0]
    benchmark(lambda: grounder.ground(sample.image, sample.query))
