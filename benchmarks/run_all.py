"""Run every benchmark and consolidate results into one summary JSON.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_all.py            # everything
    PYTHONPATH=src python benchmarks/run_all.py --only serve profile
    REPRO_PRESET=smoke PYTHONPATH=src python benchmarks/run_all.py

Each ``bench_*.py`` file runs in its own pytest process (benchmarks are
marked ``slow``, so the driver clears the default ``-m "not slow"``
filter).  The consolidated ``results/summary.json`` records, per
benchmark, the outcome, wall time, and the artifact files it refreshed —
the start of a tracked perf trajectory: commit it alongside the
per-benchmark ``results/*.txt`` baselines and diff across PRs.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import subprocess
import sys
import time

import numpy as np

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
RESULTS_DIR = os.path.join(BENCH_DIR, "results")


def discover(only):
    paths = sorted(glob.glob(os.path.join(BENCH_DIR, "bench_*.py")))
    if only:
        paths = [
            p for p in paths
            if any(tag in os.path.basename(p) for tag in only)
        ]
    return paths


def run_benchmark(path: str) -> dict:
    name = os.path.basename(path)[: -len(".py")]
    before = {f: os.path.getmtime(os.path.join(RESULTS_DIR, f))
              for f in os.listdir(RESULTS_DIR)} if os.path.isdir(RESULTS_DIR) else {}
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", path, "-m", "", "-q", "--no-header"],
        cwd=os.path.dirname(BENCH_DIR),
        capture_output=True,
        text=True,
    )
    wall = time.perf_counter() - started
    refreshed = []
    if os.path.isdir(RESULTS_DIR):
        for f in sorted(os.listdir(RESULTS_DIR)):
            full = os.path.join(RESULTS_DIR, f)
            if os.path.isfile(full) and os.path.getmtime(full) != before.get(f):
                refreshed.append(f)
    tail = "\n".join((proc.stdout or "").strip().splitlines()[-4:])
    return {
        "benchmark": name,
        "passed": proc.returncode == 0,
        "returncode": proc.returncode,
        "wall_seconds": round(wall, 3),
        "artifacts": refreshed,
        "tail": tail,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", nargs="*", default=None,
                        help="substring filters on benchmark file names")
    parser.add_argument("--out", default=os.path.join(RESULTS_DIR, "summary.json"))
    args = parser.parse_args(argv)

    paths = discover(args.only)
    if not paths:
        print("no benchmarks matched", file=sys.stderr)
        return 2

    os.makedirs(RESULTS_DIR, exist_ok=True)
    runs = []
    for path in paths:
        name = os.path.basename(path)
        print(f"[{len(runs) + 1}/{len(paths)}] {name} ...", flush=True)
        record = run_benchmark(path)
        status = "ok" if record["passed"] else f"FAILED ({record['returncode']})"
        print(f"    {status} in {record['wall_seconds']:.1f}s"
              + (f", wrote {', '.join(record['artifacts'])}" if record["artifacts"] else ""))
        runs.append(record)

    summary = {
        "preset": os.environ.get("REPRO_PRESET", "bench"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "total_wall_seconds": round(sum(r["wall_seconds"] for r in runs), 3),
        "passed": sum(1 for r in runs if r["passed"]),
        "failed": sum(1 for r in runs if not r["passed"]),
        "benchmarks": runs,
    }
    with open(args.out, "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    print(f"\n{summary['passed']}/{len(runs)} benchmarks passed; "
          f"summary written to {args.out}")
    return 0 if summary["failed"] == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
