"""Serving throughput — batched engine vs one-request-at-a-time grounding.

Replays a synthetic request trace with repeated (image, query) pairs
through :class:`repro.serve.ServeEngine` and compares queries/second
against the naive loop that calls ``Grounder.ground`` once per request.
The engine must win by at least 2x on this trace: micro-batching keeps
the conv backbone's vectorised path full and the LRU cache plus
in-flight deduplication absorb the repeats.
"""

import time

import numpy as np
from conftest import write_artifact

from repro.core import Grounder, YolloConfig, YolloModel
from repro.data import REFCOCO, build_dataset
from repro.serve import ServeEngine, synthetic_trace
from repro.utils import seed_everything, spawn_rng

import pytest

pytestmark = pytest.mark.slow

NUM_REQUESTS = 160
REPEAT_FRACTION = 0.5
MAX_BATCH = 16
MIN_SPEEDUP = 2.0


def _make_grounder():
    seed_everything(13)
    dataset = build_dataset(REFCOCO.scaled(0.2))
    cfg = YolloConfig(
        backbone="tiny", d_model=16, d_rel=24, ffn_hidden=24, head_hidden=24,
        num_rel2att=2, batch_size=8,
        max_query_length=max(6, dataset.max_query_length),
    )
    model = YolloModel(cfg, vocab_size=len(dataset.vocab))
    model.eval()
    pool = dataset["val"] + dataset["testA"]
    return Grounder(model, dataset.vocab), pool


def test_serve_throughput(results_dir):
    grounder, pool = _make_grounder()
    trace = synthetic_trace(
        pool, NUM_REQUESTS, repeat_fraction=REPEAT_FRACTION,
        rng=spawn_rng("serve-bench"),
    )

    # Warm both paths once so JIT-free numpy allocations settle.
    grounder.ground(trace[0].image, trace[0].query)

    start = time.perf_counter()
    naive = np.stack(
        [grounder.ground(r.image, r.query).box for r in trace]
    )
    naive_wall = time.perf_counter() - start
    naive_qps = len(trace) / naive_wall

    with ServeEngine(grounder, max_batch=MAX_BATCH, max_wait=0.002,
                     cache_size=256) as engine:
        start = time.perf_counter()
        served = engine.ground_many(trace)
        served_wall = time.perf_counter() - start
        stats = engine.stats()
    served_qps = len(trace) / served_wall
    speedup = served_qps / naive_qps

    assert np.array_equal(served, naive), (
        "served boxes diverged from the one-at-a-time baseline"
    )
    assert stats.cache_hits > 0, "repeated trace produced zero cache hits"

    lines = [
        f"Serving throughput ({NUM_REQUESTS} requests, "
        f"repeat fraction {REPEAT_FRACTION}, pool {len(pool)})",
        f"  one-at-a-time : {naive_qps:8.1f} qps  ({naive_wall:.3f}s)",
        f"  serve engine  : {served_qps:8.1f} qps  ({served_wall:.3f}s)",
        f"  speedup       : {speedup:8.2f}x",
        "",
        stats.render(),
    ]
    write_artifact(results_dir, "serve_throughput.txt", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"serve engine only reached {speedup:.2f}x over the naive loop "
        f"(required {MIN_SPEEDUP}x)"
    )
